//! Full-run reconstruction from per-interval measurements.

/// A reconstructed full-run statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Point estimate (weighted combination of interval measurements).
    pub value: f64,
    /// Half-width of the ~95% confidence interval, derived from
    /// inter-interval variance. Zero when fewer than two intervals
    /// contribute — callers should apply an absolute tolerance floor
    /// (see DESIGN.md §10).
    pub ci: f64,
}

/// One interval's contribution to a ratio statistic (e.g. misses per
/// lookup): `num/den` weighted by the interval's cluster weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioSample {
    /// Numerator measured in the interval.
    pub num: f64,
    /// Denominator measured in the interval.
    pub den: f64,
    /// Interval weight (cluster share; weights across a selection sum
    /// to 1).
    pub weight: f64,
}

/// z-score for a ~95% two-sided normal confidence interval.
const Z_95: f64 = 1.96;

/// Ratio-of-weighted-sums estimator: `Σ wᵢ·numᵢ / Σ wᵢ·denᵢ`.
///
/// Robust to intervals whose denominator is zero (an interval with no
/// LLC lookups simply contributes no ratio information); the
/// confidence interval is computed from the spread of per-interval
/// ratios around the pooled value, scaled by the effective sample size
/// `(Σŵ)²/Σŵ²` of the contributing intervals.
pub fn weighted_ratio(samples: &[RatioSample]) -> Estimate {
    let num: f64 = samples.iter().map(|s| s.weight * s.num).sum();
    let den: f64 = samples.iter().map(|s| s.weight * s.den).sum();
    if den <= 0.0 {
        return Estimate { value: 0.0, ci: 0.0 };
    }
    let value = num / den;
    // Per-interval ratios, restricted to intervals that measured any
    // denominator events.
    let contributing: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.den > 0.0 && s.weight > 0.0)
        .map(|s| (s.num / s.den, s.weight))
        .collect();
    Estimate { value, ci: spread_ci(value, &contributing) }
}

/// Weighted-mean estimator for plain per-interval values (no
/// denominator), e.g. per-access energy.
pub fn weighted_mean(samples: &[(f64, f64)]) -> Estimate {
    let wsum: f64 = samples.iter().map(|&(_, w)| w).sum();
    if wsum <= 0.0 {
        return Estimate { value: 0.0, ci: 0.0 };
    }
    let value = samples.iter().map(|&(v, w)| v * w).sum::<f64>() / wsum;
    let contributing: Vec<(f64, f64)> =
        samples.iter().filter(|&&(_, w)| w > 0.0).copied().collect();
    Estimate { value, ci: spread_ci(value, &contributing) }
}

/// `z · s / √n_eff` from weighted `(value, weight)` pairs around the
/// pooled `center`; zero when fewer than two points contribute.
fn spread_ci(center: f64, points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let wsum: f64 = points.iter().map(|&(_, w)| w).sum();
    if wsum <= 0.0 {
        return 0.0;
    }
    let w2sum: f64 = points.iter().map(|&(_, w)| (w / wsum) * (w / wsum)).sum();
    let n_eff = 1.0 / w2sum;
    if n_eff <= 1.0 {
        return 0.0;
    }
    let var: f64 = points.iter().map(|&(v, w)| (w / wsum) * (v - center) * (v - center)).sum();
    // Bessel-style small-sample correction on the effective count.
    let var = var * n_eff / (n_eff - 1.0);
    Z_95 * (var / n_eff).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_pools_across_intervals() {
        // Two equally-weighted intervals: 10/100 and 30/100 misses.
        let e = weighted_ratio(&[
            RatioSample { num: 10.0, den: 100.0, weight: 0.5 },
            RatioSample { num: 30.0, den: 100.0, weight: 0.5 },
        ]);
        assert!((e.value - 0.2).abs() < 1e-12);
        assert!(e.ci > 0.0, "two differing intervals give a nonzero CI");
        // The spread (0.1 vs 0.3 around 0.2) is what drives the CI.
        assert!(e.ci < 0.3);
    }

    #[test]
    fn zero_denominator_intervals_contribute_nothing() {
        let with_empty = weighted_ratio(&[
            RatioSample { num: 10.0, den: 100.0, weight: 0.25 },
            RatioSample { num: 0.0, den: 0.0, weight: 0.5 },
            RatioSample { num: 30.0, den: 100.0, weight: 0.25 },
        ]);
        let without = weighted_ratio(&[
            RatioSample { num: 10.0, den: 100.0, weight: 0.25 },
            RatioSample { num: 30.0, den: 100.0, weight: 0.25 },
        ]);
        assert_eq!(with_empty.value, without.value);
        let all_empty = weighted_ratio(&[RatioSample { num: 0.0, den: 0.0, weight: 1.0 }]);
        assert_eq!(all_empty, Estimate { value: 0.0, ci: 0.0 });
    }

    #[test]
    fn single_interval_has_zero_ci() {
        let e = weighted_ratio(&[RatioSample { num: 5.0, den: 50.0, weight: 1.0 }]);
        assert!((e.value - 0.1).abs() < 1e-12);
        assert_eq!(e.ci, 0.0);
    }

    #[test]
    fn identical_intervals_have_zero_spread() {
        let samples: Vec<RatioSample> = (0..8)
            .map(|_| RatioSample { num: 7.0, den: 70.0, weight: 0.125 })
            .collect();
        let e = weighted_ratio(&samples);
        assert!((e.value - 0.1).abs() < 1e-12);
        assert!(e.ci.abs() < 1e-12);
    }

    #[test]
    fn mean_weights_and_spreads() {
        let e = weighted_mean(&[(1.0, 0.75), (3.0, 0.25)]);
        assert!((e.value - 1.5).abs() < 1e-12);
        assert!(e.ci > 0.0);
        let uniform = weighted_mean(&[(2.0, 0.5), (2.0, 0.5)]);
        assert!((uniform.value - 2.0).abs() < 1e-12);
        assert!(uniform.ci.abs() < 1e-12);
        assert_eq!(weighted_mean(&[]), Estimate { value: 0.0, ci: 0.0 });
    }

    #[test]
    fn more_intervals_shrink_the_ci() {
        let few: Vec<RatioSample> = (0..3)
            .map(|i| RatioSample { num: 10.0 + i as f64, den: 100.0, weight: 1.0 / 3.0 })
            .collect();
        let many: Vec<RatioSample> = (0..12)
            .map(|i| RatioSample { num: 10.0 + (i % 3) as f64, den: 100.0, weight: 1.0 / 12.0 })
            .collect();
        assert!(weighted_ratio(&many).ci < weighted_ratio(&few).ci);
    }
}
