//! Executable skip/warm/measure timelines from a selection.

use crate::features::Profile;
use crate::select::{select, SelectedInterval};

/// What the hybrid runner does with a region of the access index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// Functional warm-up: accesses go through the full cache
    /// hierarchy to prime LLC/directory state, but no statistics are
    /// attributed to the run.
    Warm,
    /// Measured interval: statistics deltas are recorded and weighted
    /// by `slot`'s weight in the schedule's interval list.
    Measure {
        /// Index into [`SampleSchedule::intervals`].
        slot: usize,
    },
}

/// A half-open access-index range `[start, end)` with its execution
/// mode. Gaps between regions are skipped (functionally simulated with
/// no cache model at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First access index in the region.
    pub start: u64,
    /// One past the last access index.
    pub end: u64,
    /// Execution mode.
    pub kind: RegionKind,
}

/// A complete sampling plan for one trace: which intervals to measure,
/// their weights, and how much warm-up precedes each.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSchedule {
    /// Measured interval length in accesses.
    pub interval_len: u64,
    /// Functional warm-up accesses before each measured interval
    /// (clipped against trace start and preceding regions).
    pub warmup_len: u64,
    /// Total accesses in the profiled trace.
    pub total_accesses: u64,
    /// Selected intervals, ascending by index, weights summing to 1.
    pub intervals: Vec<SelectedInterval>,
}

impl SampleSchedule {
    /// Profile-and-select convenience: cluster `profile` into at most
    /// `k` intervals (seeded, deterministic) and attach `warmup_len`.
    ///
    /// The trace's **final interval is always selected**: metrics
    /// computed from final memory state (application output error)
    /// depend on the accesses that write the output, and those
    /// concentrate in the trace tail. A schedule that skips the tail
    /// executes the output writes functionally — exactly — and
    /// structurally underestimates output error no matter how many
    /// body intervals it measures. The tail is therefore pinned as a
    /// singleton cluster of weight `1/m`, and the remaining `k − 1`
    /// medoids cluster the body intervals (weights scaled by
    /// `(m−1)/m`), keeping the weights an exact partition of the
    /// trace.
    pub fn build(profile: &Profile, k: usize, warmup_len: u64, seed: u64) -> SampleSchedule {
        let m = profile.intervals.len();
        let intervals = if m >= 2 && k >= 2 && k <= m {
            let body = Profile {
                interval_len: profile.interval_len,
                total_accesses: profile.total_accesses,
                intervals: profile.intervals[..m - 1].to_vec(),
            };
            let scale = (m - 1) as f64 / m as f64;
            let mut intervals = select(&body, k - 1, seed).intervals;
            for s in &mut intervals {
                s.weight *= scale;
            }
            intervals.push(SelectedInterval {
                index: m - 1,
                weight: 1.0 / m as f64,
                cluster_size: 1,
            });
            intervals
        } else {
            select(profile, k, seed).intervals
        };
        SampleSchedule {
            interval_len: profile.interval_len,
            warmup_len,
            total_accesses: profile.total_accesses,
            intervals,
        }
    }

    /// The access-index span of selected interval `slot`.
    pub fn interval_span(&self, slot: usize) -> (u64, u64) {
        let s = self.intervals[slot].index as u64 * self.interval_len;
        let e = (s + self.interval_len).min(self.total_accesses);
        (s, e)
    }

    /// The executable timeline: warm and measure regions in ascending
    /// index order, non-overlapping. Warm-up is clipped where it would
    /// run into the trace start or a preceding region (a measured
    /// interval immediately before is at least as good a warm-up as a
    /// functional one).
    pub fn regions(&self) -> Vec<Region> {
        let mut out = Vec::with_capacity(self.intervals.len() * 2);
        let mut prev_end = 0u64;
        for slot in 0..self.intervals.len() {
            let (start, end) = self.interval_span(slot);
            let warm_start = start.saturating_sub(self.warmup_len).max(prev_end);
            if warm_start < start {
                out.push(Region { start: warm_start, end: start, kind: RegionKind::Warm });
            }
            if start < end {
                out.push(Region { start, end, kind: RegionKind::Measure { slot } });
            }
            prev_end = end.max(prev_end);
        }
        out
    }

    /// Fraction of the trace covered by measured intervals.
    pub fn measured_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let measured: u64 =
            (0..self.intervals.len()).map(|s| { let (a, b) = self.interval_span(s); b - a }).sum();
        measured as f64 / self.total_accesses as f64
    }

    /// Fraction of the trace touched by *detailed* simulation (warm-up
    /// plus measurement) — the cost driver of a sampled run.
    pub fn simulated_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let simulated: u64 = self.regions().iter().map(|r| r.end - r.start).sum();
        simulated as f64 / self.total_accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(indices: &[(usize, usize)], interval_len: u64, warmup: u64, total: u64) -> SampleSchedule {
        let m: usize = indices.iter().map(|&(_, sz)| sz).sum();
        SampleSchedule {
            interval_len,
            warmup_len: warmup,
            total_accesses: total,
            intervals: indices
                .iter()
                .map(|&(index, cluster_size)| SelectedInterval {
                    index,
                    weight: cluster_size as f64 / m as f64,
                    cluster_size,
                })
                .collect(),
        }
    }

    #[test]
    fn regions_are_ordered_disjoint_and_clipped() {
        // Intervals 0, 3, 4 of a 10-interval trace; warm-up one full
        // interval. Interval 0 has no room for warm-up; interval 4 is
        // preceded by measured interval 3, so its warm-up vanishes.
        let s = schedule(&[(0, 4), (3, 3), (4, 3)], 100, 100, 1000);
        let r = s.regions();
        assert_eq!(
            r,
            vec![
                Region { start: 0, end: 100, kind: RegionKind::Measure { slot: 0 } },
                Region { start: 200, end: 300, kind: RegionKind::Warm },
                Region { start: 300, end: 400, kind: RegionKind::Measure { slot: 1 } },
                Region { start: 400, end: 500, kind: RegionKind::Measure { slot: 2 } },
            ]
        );
        for w in r.windows(2) {
            assert!(w[0].end <= w[1].start, "regions overlap: {w:?}");
        }
        assert!((s.measured_fraction() - 0.3).abs() < 1e-12);
        assert!((s.simulated_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn partial_warmup_clips_against_previous_measure() {
        // Warm-up shorter than the gap: full warm-up emitted.
        let s = schedule(&[(1, 1), (5, 1)], 100, 30, 1000);
        let r = s.regions();
        assert_eq!(r[0], Region { start: 70, end: 100, kind: RegionKind::Warm });
        assert_eq!(r[2], Region { start: 470, end: 500, kind: RegionKind::Warm });
    }

    #[test]
    fn final_partial_interval_is_clipped_to_the_trace() {
        let s = schedule(&[(9, 1)], 100, 50, 950);
        let r = s.regions();
        assert_eq!(
            r,
            vec![
                Region { start: 850, end: 900, kind: RegionKind::Warm },
                Region { start: 900, end: 950, kind: RegionKind::Measure { slot: 0 } },
            ]
        );
    }
}
