//! Phase profiling and representative-interval selection for sampled
//! simulation.
//!
//! Full detailed simulation of a paper-scale trace is dominated by
//! per-access bookkeeping that profiling showed is near its floor; the
//! remaining order-of-magnitude win comes from simulating *fewer*
//! accesses. This crate implements the selection half of that bargain,
//! in the spirit of SimPoint-style interval clustering:
//!
//! 1. [`profile`] makes one cheap functional pass over a
//!    [`TraceStream`], splitting the access index space into fixed
//!    length intervals and computing an [`IntervalFeatures`] vector per
//!    interval (access-type mix, working-set size and delta, log2
//!    value-bin histogram of approximate store payloads — a proxy for
//!    which Doppelgänger map bins the interval exercises).
//! 2. [`select`] clusters those feature vectors with a deterministic
//!    serial k-medoids and returns K medoid intervals, each weighted by
//!    its cluster's share of the trace.
//! 3. [`SampleSchedule`] turns a selection into an executable timeline
//!    of skip / warm-up / measure regions for the hybrid runner in
//!    `dg-system`.
//! 4. [`weighted_ratio`] / [`weighted_mean`] reconstruct full-run
//!    estimates from per-interval measurements, with a confidence
//!    interval derived from inter-interval variance.
//!
//! Everything here is serial and seeded: the same `(trace, seed, k)`
//! triple produces bit-identical selections regardless of
//! `DG_PAR_THREADS` or host, which keeps sampled exports byte-diffable
//! (see DESIGN.md §10).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod estimate;
mod features;
mod schedule;
mod select;

pub use estimate::{weighted_mean, weighted_ratio, Estimate, RatioSample};
pub use features::{profile, IntervalFeatures, Profile};
pub use schedule::{Region, RegionKind, SampleSchedule};
pub use select::{select, SelectedInterval, Selection};
