//! Deterministic k-medoids interval selection.

use crate::features::Profile;
use dg_mem::synth::SplitMix64;

/// One representative interval chosen by [`select`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectedInterval {
    /// Interval index into the [`Profile`] it was selected from.
    pub index: usize,
    /// This interval's weight in full-run reconstruction: its cluster's
    /// share of all intervals. Weights over a selection sum to 1.
    pub weight: f64,
    /// Number of intervals assigned to this medoid's cluster.
    pub cluster_size: usize,
}

/// The set of representative intervals, sorted by interval index.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Selected intervals, ascending by `index`.
    pub intervals: Vec<SelectedInterval>,
    /// Total number of profiled intervals the weights refer to.
    pub total_intervals: usize,
}

/// Squared Euclidean distance between feature vectors.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Pick at most `k` representative intervals from `profile` by
/// clustering interval feature vectors with a serial k-medoids.
///
/// The algorithm is deliberately sequential and fully ordered, so the
/// same `(profile, k, seed)` produces a bit-identical [`Selection`] on
/// every host and under every `DG_PAR_THREADS` setting:
///
/// 1. The first medoid is a seeded draw from the interval indices.
/// 2. Remaining medoids are farthest-first: the interval with the
///    greatest distance to its nearest existing medoid (ties broken
///    toward the lowest index). If every remaining interval coincides
///    with a medoid, fewer than `k` clusters are returned.
/// 3. Assignment / medoid-update sweeps run to a fixed point (bounded
///    iteration count), with all ties again broken toward the lowest
///    index.
///
/// Weights are `cluster_size / total_intervals`, with the largest
/// cluster absorbing the floating-point residual so the weights sum to
/// 1 within 1 ulp.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn select(profile: &Profile, k: usize, seed: u64) -> Selection {
    assert!(k > 0, "k must be positive");
    let m = profile.intervals.len();
    if m == 0 {
        return Selection { intervals: Vec::new(), total_intervals: 0 };
    }
    let vectors: Vec<Vec<f64>> = profile.intervals.iter().map(|f| f.to_vector()).collect();
    if m <= k {
        let mut intervals: Vec<SelectedInterval> = (0..m)
            .map(|index| SelectedInterval { index, weight: 1.0 / m as f64, cluster_size: 1 })
            .collect();
        fix_weight_residual(&mut intervals);
        return Selection { intervals, total_intervals: m };
    }

    // Seeded initial medoid; the rest farthest-first.
    let mut rng = SplitMix64::new(seed ^ (m as u64).rotate_left(17));
    let mut medoids: Vec<usize> = vec![rng.below(m as u64) as usize];
    while medoids.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in vectors.iter().enumerate() {
            if medoids.contains(&i) {
                continue;
            }
            let d = medoids.iter().map(|&mi| dist2(v, &vectors[mi])).fold(f64::MAX, f64::min);
            if best.map_or(true, |(_, bd)| d > bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, d)) if d > 0.0 => medoids.push(i),
            // All remaining points coincide with a medoid: more
            // clusters would only split identical intervals.
            _ => break,
        }
    }

    let mut assign = vec![0usize; m];
    for _ in 0..32 {
        // Assign every interval to its nearest medoid (first wins on
        // ties — medoid order is deterministic).
        for (i, v) in vectors.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for (slot, &mi) in medoids.iter().enumerate() {
                let d = dist2(v, &vectors[mi]);
                if d < best_d {
                    best_d = d;
                    best = slot;
                }
            }
            assign[i] = best;
        }
        // Move each medoid to the cluster member minimizing the total
        // intra-cluster distance (lowest index on ties).
        let mut changed = false;
        for slot in 0..medoids.len() {
            let members: Vec<usize> =
                (0..m).filter(|&i| assign[i] == slot).collect();
            let mut best = medoids[slot];
            let mut best_cost = f64::MAX;
            for &cand in &members {
                let cost: f64 = members.iter().map(|&o| dist2(&vectors[cand], &vectors[o])).sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if best != medoids[slot] {
                medoids[slot] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut intervals: Vec<SelectedInterval> = medoids
        .iter()
        .enumerate()
        .map(|(slot, &index)| {
            let cluster_size = assign.iter().filter(|&&s| s == slot).count();
            SelectedInterval { index, weight: cluster_size as f64 / m as f64, cluster_size }
        })
        .filter(|s| s.cluster_size > 0)
        .collect();
    intervals.sort_by_key(|s| s.index);
    fix_weight_residual(&mut intervals);
    Selection { intervals, total_intervals: m }
}

/// Make the weights sum to 1 within 1 ulp by assigning the largest
/// cluster (lowest index on ties) the exact residual of the others.
fn fix_weight_residual(intervals: &mut [SelectedInterval]) {
    if intervals.is_empty() {
        return;
    }
    let largest = intervals
        .iter()
        .enumerate()
        .max_by(|(ai, a), (bi, b)| {
            a.cluster_size.cmp(&b.cluster_size).then(bi.cmp(ai))
        })
        .map(|(i, _)| i)
        .unwrap();
    let others: f64 =
        intervals.iter().enumerate().filter(|&(i, _)| i != largest).map(|(_, s)| s.weight).sum();
    intervals[largest].weight = 1.0 - others;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::profile;
    use dg_mem::{Addr, SynthPattern, SynthStream, TenantSpec};

    fn stream() -> SynthStream {
        SynthStream::new(
            vec![
                TenantSpec {
                    base: Addr(0x1_0000),
                    blocks: 256,
                    pattern: SynthPattern::Zipf { theta: 0.8 },
                    store_sixteenths: 4,
                    approx: true,
                },
                TenantSpec {
                    base: Addr(0x100_0000),
                    blocks: 2048,
                    pattern: SynthPattern::Uniform,
                    store_sixteenths: 2,
                    approx: false,
                },
            ],
            30_000,
            3,
        )
    }

    #[test]
    fn selection_is_deterministic_and_weighted() {
        let p = profile(&mut stream(), 1024);
        let a = select(&p, 6, 42);
        let b = select(&p, 6, 42);
        assert_eq!(a, b);
        assert!(!a.intervals.is_empty() && a.intervals.len() <= 6);
        assert_eq!(a.total_intervals, p.intervals.len());
        let covered: usize = a.intervals.iter().map(|s| s.cluster_size).sum();
        assert_eq!(covered, p.intervals.len(), "every interval belongs to one cluster");
        let sum: f64 = a.intervals.iter().map(|s| s.weight).sum();
        assert!((sum - 1.0).abs() <= f64::EPSILON, "weights sum to {sum}");
        for w in a.intervals.windows(2) {
            assert!(w[0].index < w[1].index, "selection sorted by interval index");
        }
    }

    #[test]
    fn different_seeds_may_pick_different_medoids_but_stay_valid() {
        let p = profile(&mut stream(), 1024);
        for seed in [1u64, 2, 3, 0xdead] {
            let s = select(&p, 4, seed);
            let sum: f64 = s.intervals.iter().map(|x| x.weight).sum();
            assert!((sum - 1.0).abs() <= f64::EPSILON);
            for sel in &s.intervals {
                assert!(sel.index < p.intervals.len());
                assert!(sel.cluster_size > 0);
            }
        }
    }

    #[test]
    fn tiny_profiles_select_everything() {
        let p = profile(&mut stream(), 8192);
        let m = p.intervals.len();
        let s = select(&p, m + 3, 9);
        assert_eq!(s.intervals.len(), m);
        for (i, sel) in s.intervals.iter().enumerate() {
            assert_eq!(sel.index, i);
            assert_eq!(sel.cluster_size, 1);
        }
        let sum: f64 = s.intervals.iter().map(|x| x.weight).sum();
        assert!((sum - 1.0).abs() <= f64::EPSILON);
    }

    #[test]
    fn identical_intervals_collapse_to_one_cluster() {
        // A single sequential tenant produces near-identical interval
        // features once the working set saturates; farthest-first must
        // not manufacture k distinct clusters out of duplicates.
        let mut s = SynthStream::new(
            vec![TenantSpec {
                base: Addr(0x4000),
                blocks: 16,
                pattern: SynthPattern::Sequential { stride: 1 },
                store_sixteenths: 0,
                approx: false,
            }],
            16_384,
            5,
        );
        let p = profile(&mut s, 1024);
        let sel = select(&p, 8, 7);
        assert!(!sel.intervals.is_empty());
        let sum: f64 = sel.intervals.iter().map(|x| x.weight).sum();
        assert!((sum - 1.0).abs() <= f64::EPSILON);
    }
}
