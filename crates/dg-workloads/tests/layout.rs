//! Static layout validation of the workload suite: annotations are
//! block-aligned and the approximate-footprint ordering matches the
//! paper's Table 2.

use dg_mem::BLOCK_BYTES;
use dg_workloads::{prepare, Kernel};

/// Fraction of a kernel's *allocated* bytes that are annotated
/// approximate (a static proxy for Table 2's residency measurement).
fn approx_layout_fraction(kernel: &dyn Kernel) -> f64 {
    let p = prepare(kernel);
    let approx_bytes: u64 = p.annotations.iter().map(|r| r.len).sum();
    // Total touched bytes: populated blocks of the initial image plus
    // annotated (possibly not-yet-written) regions.
    let image_bytes = p.image.populated_blocks() as u64 * BLOCK_BYTES as u64;
    let total = image_bytes.max(approx_bytes);
    approx_bytes as f64 / total as f64
}

#[test]
fn annotated_regions_are_block_aligned() {
    for kernel in dg_workloads::small_suite(1) {
        let p = prepare(kernel.as_ref());
        for r in p.annotations.iter() {
            assert_eq!(
                r.start.0 % BLOCK_BYTES as u64,
                0,
                "{}: region {} not block aligned",
                kernel.name(),
                r
            );
        }
    }
}

#[test]
fn annotated_regions_have_sane_ranges() {
    for kernel in dg_workloads::small_suite(2) {
        let p = prepare(kernel.as_ref());
        for r in p.annotations.iter() {
            assert!(r.min < r.max, "{}: degenerate range {}", kernel.name(), r);
            assert!(r.len > 0);
        }
    }
}

#[test]
fn footprint_ordering_matches_table2() {
    let kernels = dg_workloads::paper_suite(3);
    let frac: std::collections::HashMap<&str, f64> = kernels
        .iter()
        .map(|k| (k.name(), approx_layout_fraction(k.as_ref())))
        .collect();
    // The paper's extremes (Table 2): inversek2j/jmeint/jpeg nearly
    // all-approximate; swaptions and fluidanimate nearly none.
    for high in ["inversek2j", "jmeint", "jpeg"] {
        assert!(frac[high] > 0.8, "{high} should be approx-heavy: {}", frac[high]);
    }
    for low in ["swaptions", "fluidanimate"] {
        assert!(frac[low] < 0.25, "{low} should be approx-light: {}", frac[low]);
    }
    // And the relative ordering between the extremes holds.
    assert!(frac["inversek2j"] > frac["canneal"]);
    assert!(frac["canneal"] > frac["swaptions"]);
}

#[test]
fn initial_values_respect_annotation_ranges() {
    // Setup data inside an annotated region must (almost) always fall
    // inside the declared conservative range.
    for kernel in dg_workloads::small_suite(4) {
        let p = prepare(kernel.as_ref());
        for r in p.annotations.iter() {
            let elems = (r.len as usize / r.ty.bytes()).min(512);
            for i in 0..elems {
                let addr = dg_mem::Addr(r.start.0 + (i * r.ty.bytes()) as u64);
                let block = p.image.block(addr.block());
                let off = addr.block_offset() / r.ty.bytes();
                let v = block.elem(r.ty, off);
                assert!(
                    v >= r.min - 1e-9 && v <= r.max + 1e-9,
                    "{}: value {v} outside {} at {}",
                    kernel.name(),
                    r,
                    addr
                );
            }
        }
    }
}

#[test]
fn outputs_have_stable_lengths_across_seeds() {
    for (a, b) in dg_workloads::small_suite(5).into_iter().zip(dg_workloads::small_suite(6)) {
        let mut pa = prepare(a.as_ref());
        let mut pb = prepare(b.as_ref());
        dg_workloads::run_to_completion(a.as_ref(), &mut pa.image, 1);
        dg_workloads::run_to_completion(b.as_ref(), &mut pb.image, 1);
        assert_eq!(
            a.output(&mut pa.image).len(),
            b.output(&mut pb.image).len(),
            "{}: output length depends on seed",
            a.name()
        );
    }
}
