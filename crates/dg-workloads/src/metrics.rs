//! Output-error metrics shared by the kernels (paper §4.1, citing the
//! error metrics of prior approximate-computing work).

/// Mean relative error: `mean(|a − p| / max(|p|, eps))`, clamped to 1.
///
/// The metric used for numerical outputs (prices, angles, positions).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_relative_error(precise: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(precise.len(), approx.len(), "output lengths differ");
    if precise.is_empty() {
        return 0.0;
    }
    let eps = 1e-9;
    let sum: f64 = precise
        .iter()
        .zip(approx)
        .map(|(&p, &a)| {
            let denom = p.abs().max(eps);
            ((a - p).abs() / denom).min(1.0)
        })
        .sum();
    sum / precise.len() as f64
}

/// Root-mean-square error normalized by `scale` (e.g. 255 for pixel
/// data), clamped to 1. Used for image outputs (jpeg).
///
/// # Panics
///
/// Panics if the slices have different lengths or `scale` is not
/// positive.
pub fn normalized_rmse(precise: &[f64], approx: &[f64], scale: f64) -> f64 {
    assert_eq!(precise.len(), approx.len(), "output lengths differ");
    assert!(scale > 0.0, "scale must be positive");
    if precise.is_empty() {
        return 0.0;
    }
    let mse: f64 = precise
        .iter()
        .zip(approx)
        .map(|(&p, &a)| (a - p) * (a - p))
        .sum::<f64>()
        / precise.len() as f64;
    (mse.sqrt() / scale).min(1.0)
}

/// Fraction of positions where the outputs disagree (exact comparison).
/// Used for classification outputs (jmeint's intersection booleans,
/// ferret's result ranks, kmeans assignments).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mismatch_rate(precise: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(precise.len(), approx.len(), "output lengths differ");
    if precise.is_empty() {
        return 0.0;
    }
    let mismatches = precise.iter().zip(approx).filter(|(p, a)| p != a).count();
    mismatches as f64 / precise.len() as f64
}

/// Relative error of two scalar summaries (e.g. canneal's final routing
/// cost), clamped to 1.
pub fn scalar_relative_error(precise: f64, approx: f64) -> f64 {
    let denom = precise.abs().max(1e-9);
    ((approx - precise).abs() / denom).min(1.0)
}

/// Distribution statistics over per-element relative errors — the
/// quality-of-result detail behind a single mean-error number
/// (approximate-computing papers increasingly report tail error, not
/// just the mean).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Mean relative error.
    pub mean: f64,
    /// Median relative error.
    pub median: f64,
    /// 95th-percentile relative error.
    pub p95: f64,
    /// Maximum relative error.
    pub max: f64,
    /// Fraction of elements with any error at all.
    pub affected: f64,
}

impl dg_obs::Snapshot for ErrorStats {
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    fn float_metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("mean", self.mean),
            ("median", self.median),
            ("p95", self.p95),
            ("max", self.max),
            ("affected", self.affected),
        ]
    }
}

/// Compute the per-element relative-error distribution.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn error_stats(precise: &[f64], approx: &[f64]) -> ErrorStats {
    assert_eq!(precise.len(), approx.len(), "output lengths differ");
    if precise.is_empty() {
        return ErrorStats::default();
    }
    let eps = 1e-9;
    let mut errs: Vec<f64> = precise
        .iter()
        .zip(approx)
        .map(|(&p, &a)| ((a - p).abs() / p.abs().max(eps)).min(1.0))
        .collect();
    // total_cmp, not partial_cmp().unwrap(): a NaN error (NaN kernel
    // output) must rank, not panic the whole evaluation.
    errs.sort_by(f64::total_cmp);
    let n = errs.len();
    let pick = |q: f64| errs[((n as f64 - 1.0) * q).round() as usize];
    ErrorStats {
        mean: errs.iter().sum::<f64>() / n as f64,
        median: pick(0.5),
        p95: pick(0.95),
        max: errs[n - 1],
        affected: errs.iter().filter(|&&e| e > 0.0).count() as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mre_zero_for_identical() {
        assert_eq!(mean_relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mre_basic() {
        // 10% error on one of two elements = 5% mean.
        let e = mean_relative_error(&[10.0, 10.0], &[11.0, 10.0]);
        assert!((e - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mre_clamps_blowups() {
        // Tiny precise value with big absolute error clamps at 1.
        let e = mean_relative_error(&[1e-15], &[5.0]);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn mre_empty_is_zero() {
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mre_length_mismatch() {
        mean_relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rmse_normalized() {
        // Constant error of 25.5 over a 255 scale = 0.1.
        let p = [100.0, 50.0];
        let a = [125.5, 75.5];
        assert!((normalized_rmse(&p, &a, 255.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mismatch_counts_fraction() {
        let p = [1.0, 0.0, 1.0, 1.0];
        let a = [1.0, 1.0, 1.0, 0.0];
        assert_eq!(mismatch_rate(&p, &a), 0.5);
    }

    #[test]
    fn scalar_error() {
        assert!((scalar_relative_error(200.0, 210.0) - 0.05).abs() < 1e-12);
        assert_eq!(scalar_relative_error(0.0, 1.0), 1.0);
    }

    #[test]
    fn error_stats_distribution() {
        // 19 exact elements, one with 100% error.
        let precise = vec![10.0; 20];
        let mut approx = vec![10.0; 20];
        approx[7] = 20.0;
        let s = error_stats(&precise, &approx);
        assert!((s.mean - 0.05).abs() < 1e-12);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.max, 1.0);
        assert!((s.affected - 0.05).abs() < 1e-12);
    }

    #[test]
    fn error_stats_identical_outputs() {
        let v = vec![1.0, 2.0, 3.0];
        let s = error_stats(&v, &v);
        assert_eq!(s, ErrorStats { mean: 0.0, median: 0.0, p95: 0.0, max: 0.0, affected: 0.0 });
    }

    #[test]
    fn error_stats_percentiles_ordered() {
        let precise: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let approx: Vec<f64> = precise.iter().map(|v| v * 1.01).collect();
        let s = error_stats(&precise, &approx);
        assert!(s.median <= s.p95 && s.p95 <= s.max);
        assert!((s.mean - 0.01).abs() < 1e-9);
        assert_eq!(s.affected, 1.0);
    }

    #[test]
    fn error_stats_empty() {
        assert_eq!(error_stats(&[], &[]), ErrorStats::default());
    }
}
