//! Typed array views over simulated memory.
//!
//! Kernels lay out their data as contiguous arrays in the simulated
//! address space; these views provide bounds-checked, typed access
//! through any [`Memory`] implementation.

use dg_mem::{Addr, ApproxRegion, ElemType, Memory};

macro_rules! typed_array {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $elem:expr, $load:ident, $store:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct $name {
            base: Addr,
            len: usize,
        }

        impl $name {
            /// A view of `len` elements starting at `base`.
            pub fn new(base: Addr, len: usize) -> Self {
                Self { base, len }
            }

            /// Number of elements.
            pub fn len(&self) -> usize {
                self.len
            }

            /// Whether the array is empty.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// First byte address.
            pub fn base(&self) -> Addr {
                self.base
            }

            /// Size of the array in bytes.
            pub fn bytes(&self) -> u64 {
                (self.len * $elem.bytes()) as u64
            }

            /// Address of element `i`.
            ///
            /// # Panics
            ///
            /// Panics if `i` is out of bounds.
            pub fn addr(&self, i: usize) -> Addr {
                assert!(i < self.len, "index {i} out of bounds ({})", self.len);
                self.base.offset((i * $elem.bytes()) as u64)
            }

            /// Load element `i` through `mem`.
            pub fn get(&self, mem: &mut dyn Memory, i: usize) -> $ty {
                mem.$load(self.addr(i))
            }

            /// Store element `i` through `mem`.
            pub fn set(&self, mem: &mut dyn Memory, i: usize, v: $ty) {
                mem.$store(self.addr(i), v)
            }

            /// An annotation covering exactly this array.
            pub fn annotation(&self, min: f64, max: f64) -> ApproxRegion {
                ApproxRegion::new(self.base, self.bytes().max(1), $elem, min, max)
            }
        }
    };
}

typed_array!(
    /// An `f32` array in simulated memory.
    ArrayF32, f32, ElemType::F32, load_f32, store_f32
);
typed_array!(
    /// An `f64` array in simulated memory.
    ArrayF64, f64, ElemType::F64, load_f64, store_f64
);
typed_array!(
    /// An `i32` array in simulated memory.
    ArrayI32, i32, ElemType::I32, load_i32, store_i32
);
typed_array!(
    /// A `u8` array in simulated memory.
    ArrayU8, u8, ElemType::U8, load_u8, store_u8
);

#[cfg(test)]
mod tests {
    use super::*;
    use dg_mem::MemoryImage;

    #[test]
    fn round_trip_all_types() {
        let mut mem = MemoryImage::new();
        let f = ArrayF32::new(Addr(0), 4);
        let d = ArrayF64::new(Addr(64), 4);
        let i = ArrayI32::new(Addr(128), 4);
        let b = ArrayU8::new(Addr(192), 4);
        f.set(&mut mem, 1, 1.5);
        d.set(&mut mem, 2, -2.5);
        i.set(&mut mem, 3, -7);
        b.set(&mut mem, 0, 200);
        assert_eq!(f.get(&mut mem, 1), 1.5);
        assert_eq!(d.get(&mut mem, 2), -2.5);
        assert_eq!(i.get(&mut mem, 3), -7);
        assert_eq!(b.get(&mut mem, 0), 200);
    }

    #[test]
    fn addressing() {
        let f = ArrayF32::new(Addr(0x100), 10);
        assert_eq!(f.addr(0), Addr(0x100));
        assert_eq!(f.addr(3), Addr(0x10c));
        assert_eq!(f.bytes(), 40);
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let f = ArrayF32::new(Addr(0), 2);
        f.addr(2);
    }

    #[test]
    fn annotation_covers_array() {
        let f = ArrayF32::new(Addr(0x40), 16);
        let r = f.annotation(0.0, 1.0);
        assert!(r.contains(Addr(0x40)));
        assert!(r.contains(Addr(0x40 + 63)));
        assert!(!r.contains(Addr(0x40 + 64)));
        assert_eq!(r.ty, ElemType::F32);
    }
}
