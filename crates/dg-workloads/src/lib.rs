//! Annotated approximate-computing workloads (paper §4.1).
//!
//! The paper evaluates Doppelgänger on PARSEC and AxBench applications.
//! Those suites are C/C++ binaries instrumented with Pin; here each
//! benchmark is re-implemented from scratch as a small Rust kernel that
//!
//! * computes the **real algorithm** (Black-Scholes pricing, simulated
//!   annealing, feature-vector search, SPH fluid step, 2-joint inverse
//!   kinematics, triangle-pair intersection, JPEG DCT + quantization,
//!   k-means clustering, Monte-Carlo swaption pricing) on synthetic,
//!   seeded inputs;
//! * performs **all data accesses through the [`dg_mem::Memory`]
//!   interface**, so the same kernel can run against a precise memory
//!   image (golden run), a recording memory (trace capture for the
//!   timing simulator) or a functional cache model (approximation feeds
//!   back into the computation — the paper's Pin methodology);
//! * carries the paper's **programmer annotations**: which arrays are
//!   approximate, their element type and expected value range
//!   (Table 2's approximate LLC footprints guided which arrays are
//!   annotated);
//! * defines the paper's **output-error metric** for its final output.
//!
//! # Example
//!
//! ```
//! use dg_workloads::{Kernel, kernels::Blackscholes, run_to_completion};
//! use dg_mem::MemoryImage;
//!
//! let kernel = Blackscholes::new(256, 42);
//! let mut mem = MemoryImage::new();
//! let annots = kernel.setup(&mut mem);
//! assert!(!annots.is_empty());
//! run_to_completion(&kernel, &mut mem, 1);
//! let out = kernel.output(&mut mem);
//! assert_eq!(out.len(), 2 * 256); // a call and a put price per option
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The kernels deliberately keep the C-style indexed loops of the
// original PARSEC/AxBench codes they re-implement.
#![allow(clippy::needless_range_loop)]

mod array;
mod kernel;
pub mod kernels;
pub mod metrics;
pub mod stream;

pub use array::{ArrayF32, ArrayF64, ArrayI32, ArrayU8};
pub use kernel::{run_phase_range, run_to_completion, Kernel};
pub use stream::KernelSource;

use dg_mem::{AnnotationTable, MemoryImage};

/// Construct every paper benchmark at its default (simulation-friendly)
/// scale with a fixed seed.
///
/// Names match the paper's Table 2: `blackscholes`, `canneal`, `ferret`,
/// `fluidanimate`, `inversek2j`, `jmeint`, `jpeg`, `kmeans`,
/// `swaptions`.
pub fn paper_suite(seed: u64) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(kernels::Blackscholes::new(24 * 1024, seed)),
        Box::new(kernels::Canneal::new(32 * 1024, 36_000, seed)),
        Box::new(kernels::Ferret::new(1280, 48, 32, seed)),
        Box::new(kernels::Fluidanimate::new(6 * 1024, 3, seed)),
        Box::new(kernels::Inversek2j::new(48 * 1024, seed)),
        Box::new(kernels::Jmeint::new(16 * 1024, seed)),
        Box::new(kernels::Jpeg::new(256, 256, seed)),
        Box::new(kernels::Kmeans::new(5 * 1024, 16, 8, 5, seed)),
        Box::new(kernels::Swaptions::new(96, 1024, seed)),
    ]
}

/// A smaller suite for fast tests and examples (same kernels, reduced
/// problem sizes).
pub fn small_suite(seed: u64) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(kernels::Blackscholes::new(512, seed)),
        Box::new(kernels::Canneal::new(1024, 2_000, seed)),
        Box::new(kernels::Ferret::new(256, 8, 16, seed)),
        Box::new(kernels::Fluidanimate::new(256, 2, seed)),
        Box::new(kernels::Inversek2j::new(1024, seed)),
        Box::new(kernels::Jmeint::new(512, seed)),
        Box::new(kernels::Jpeg::new(64, 64, seed)),
        Box::new(kernels::Kmeans::new(512, 8, 4, 3, seed)),
        Box::new(kernels::Swaptions::new(8, 32, seed)),
    ]
}

/// A medium suite (~10× the small suite's access count, same kernels):
/// long enough for interval sampling to pay off, short enough to
/// measure in CI. Used by `repro_all --medium`.
pub fn medium_suite(seed: u64) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(kernels::Blackscholes::new(4 * 1024, seed)),
        Box::new(kernels::Canneal::new(4 * 1024, 16_000, seed)),
        Box::new(kernels::Ferret::new(768, 16, 24, seed)),
        Box::new(kernels::Fluidanimate::new(1024, 3, seed)),
        Box::new(kernels::Inversek2j::new(10 * 1024, seed)),
        Box::new(kernels::Jmeint::new(4 * 1024, seed)),
        Box::new(kernels::Jpeg::new(160, 160, seed)),
        Box::new(kernels::Kmeans::new(2 * 1024, 12, 6, 4, seed)),
        Box::new(kernels::Swaptions::new(24, 96, seed)),
    ]
}

/// Prepared state for a kernel: its initial memory image and
/// annotations.
#[derive(Debug)]
pub struct Prepared {
    /// Memory contents after [`Kernel::setup`].
    pub image: MemoryImage,
    /// The kernel's approximate-region annotations.
    pub annotations: AnnotationTable,
}

/// Run a kernel's setup into a fresh image.
pub fn prepare(kernel: &dyn Kernel) -> Prepared {
    let mut image = MemoryImage::new();
    let annotations = kernel.setup(&mut image);
    Prepared { image, annotations }
}

#[cfg(test)]
mod suite_tests {
    use super::*;
    use dg_mem::TraceStream;

    fn total_accesses(suite: &[Box<dyn Kernel>]) -> u64 {
        suite
            .iter()
            .map(|k| KernelSource::new(k.as_ref(), 4, 4).total_accesses())
            .sum()
    }

    #[test]
    fn medium_suite_is_an_order_of_magnitude_above_small() {
        let small = small_suite(7);
        let medium = medium_suite(7);
        for (s, m) in small.iter().zip(&medium) {
            assert_eq!(s.name(), m.name(), "suites must share kernel order");
        }
        let ratio = total_accesses(&medium) as f64 / total_accesses(&small) as f64;
        assert!(
            (5.0..25.0).contains(&ratio),
            "medium/small access ratio {ratio:.1} outside the ~10x target"
        );
    }
}
