//! PARSEC `ferret`: content-based similarity search.
//!
//! A database of image feature vectors is scanned for each query; the
//! top-K nearest (Euclidean) vectors are ranked. The paper notes the
//! error metric is pessimistic: a query is "wrong" if its ranked result
//! list differs at all from the precise run's.
//!
//! Annotated approximate: the database and query feature vectors.
//! Precise: per-image metadata read for the final candidates, which
//! keeps ferret's approximate LLC footprint mid-range (Table 2: 45.9%).

use crate::kernel::partition;
use crate::metrics::mismatch_rate;
use crate::{ArrayF32, ArrayI32, ArrayU8, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// The ferret kernel.
#[derive(Debug)]
pub struct Ferret {
    db_size: usize,
    dim: usize,
    queries: usize,
    top_k: usize,
    seed: u64,
    /// Database feature vectors, row-major `db_size × dim`.
    db: ArrayF32,
    /// Query feature vectors, row-major `queries × dim`.
    query: ArrayF32,
    /// Ranked result indices, row-major `queries × top_k`.
    results: ArrayI32,
    /// Precise per-image metadata (descriptor bytes).
    metadata: ArrayU8,
}

impl Ferret {
    /// Metadata bytes per database image.
    const META_BYTES: usize = 256;
    /// Results kept per query.
    const TOP_K: usize = 4;

    /// A database of `db_size` `dim`-dimensional vectors and
    /// `queries` queries.
    pub fn new(db_size: usize, dim: usize, queries: usize, seed: u64) -> Self {
        assert!(db_size > Self::TOP_K && dim > 0 && queries > 0);
        let mut space = AddressSpace::new();
        let db = ArrayF32::new(space.alloc_blocks((4 * db_size * dim) as u64), db_size * dim);
        let query = ArrayF32::new(space.alloc_blocks((4 * queries * dim) as u64), queries * dim);
        let results =
            ArrayI32::new(space.alloc_blocks((4 * queries * Self::TOP_K) as u64), queries * Self::TOP_K);
        let metadata =
            ArrayU8::new(space.alloc_blocks((db_size * Self::META_BYTES) as u64), db_size * Self::META_BYTES);
        Ferret { db_size, dim, queries, top_k: Self::TOP_K, seed, db, query, results, metadata }
    }

    fn distance(&self, mem: &mut dyn Memory, q: usize, d: usize) -> f32 {
        let mut sum = 0.0f32;
        for j in 0..self.dim {
            let qa = self.query.get(mem, q * self.dim + j);
            let da = self.db.get(mem, d * self.dim + j);
            let diff = qa - da;
            sum += diff * diff;
        }
        mem.think(3 * self.dim as u32);
        sum
    }
}

impl Kernel for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0xfe44e7);
        // Clustered database: features cluster around a handful of
        // archetypes, giving realistic inter-vector similarity.
        let archetypes = 12;
        let centers: Vec<Vec<f32>> = (0..archetypes)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.1..0.9)).collect())
            .collect();
        // Real image databases contain duplicate and near-duplicate
        // images; about a third of the vectors are exact copies of
        // earlier entries. Duplication happens in cache-block-aligned
        // runs (`run` vectors cover whole 64 B blocks even when one
        // vector is smaller than a block).
        let run = (16usize).div_ceil(self.dim).max(1);
        let mut i = 0;
        while i < self.db_size {
            let end = (i + run).min(self.db_size);
            // `prior_runs > 0` keeps the source range nonempty (same
            // draw sequence as the old `i >= run` half of the guard);
            // `i >= archetypes` ensures a diverse prefix before copying.
            let prior_runs = i / run;
            if prior_runs > 0 && i >= archetypes && rng.gen_bool(0.45) {
                let src = rng.gen_range(0..prior_runs) * run;
                // Half the copies are bit-exact duplicates, half carry
                // re-encoding noise far below the 14-bit map resolution
                // (near-duplicate images): these defeat exact
                // deduplication but still share a Doppelganger entry.
                let noise: f32 = if rng.gen_bool(0.5) { 0.0 } else { rng.gen_range(1.0e-5..4.0e-5) };
                for k in 0..end - i {
                    for j in 0..self.dim {
                        let v = self.db.get(mem, (src + k) * self.dim + j);
                        self.db.set(mem, (i + k) * self.dim + j, v + noise);
                    }
                }
            } else {
                for idx in i..end {
                    let c = &centers[idx % archetypes];
                    for j in 0..self.dim {
                        let v: f32 = (c[j] + rng.gen_range(-0.08f32..0.08)).clamp(0.0, 1.0);
                        self.db.set(mem, idx * self.dim + j, v);
                    }
                }
            }
            i = end;
        }
        for q in 0..self.queries {
            let c = &centers[q % archetypes];
            for j in 0..self.dim {
                let v: f32 = (c[j] + rng.gen_range(-0.1f32..0.1)).clamp(0.0, 1.0);
                self.query.set(mem, q * self.dim + j, v);
            }
        }
        for i in 0..self.db_size * Self::META_BYTES {
            self.metadata.set(mem, i, rng.gen());
        }
        let mut t = AnnotationTable::new();
        t.add(self.db.annotation(0.0, 1.0));
        t.add(self.query.annotation(0.0, 1.0));
        t
    }

    fn phases(&self) -> usize {
        1
    }

    fn run_phase(&self, mem: &mut dyn Memory, _phase: usize, tid: usize, threads: usize) {
        for q in partition(self.queries, tid, threads) {
            // Full database scan maintaining the top-K (smallest
            // distances, ties broken by lower index).
            let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.top_k + 1);
            for d in 0..self.db_size {
                let dist = self.distance(mem, q, d);
                best.push((dist, d));
                // total_cmp: approximate reads can hand back NaN
                // distances; rank them last instead of panicking.
                best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                best.truncate(self.top_k);
            }
            // The ranking stage walks the winners' full metadata records
            // and samples the candidate index (precise data — this is
            // what keeps ferret's approximate footprint mid-range).
            let mut checksum = 0u32;
            for &(_, d) in &best {
                for b in (0..Self::META_BYTES).step_by(8) {
                    checksum =
                        checksum.wrapping_add(self.metadata.get(mem, d * Self::META_BYTES + b) as u32);
                }
            }
            for d in (q % 8..self.db_size).step_by(8) {
                checksum = checksum
                    .wrapping_add(self.metadata.get(mem, d * Self::META_BYTES) as u32);
            }
            mem.think(16 + (checksum & 1)); // keep the checksum live
            for (rank, &(_, d)) in best.iter().enumerate() {
                self.results.set(mem, q * self.top_k + rank, d as i32);
            }
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        (0..self.queries * self.top_k)
            .map(|i| self.results.get(mem, i) as f64)
            .collect()
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        // Pessimistic rank mismatch, per the paper's discussion (§5.2).
        mismatch_rate(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn results_are_sorted_by_distance() {
        let k = Ferret::new(64, 8, 4, 11);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 1);
        let mem = &mut p.image;
        for q in 0..4 {
            let mut prev = -1.0f32;
            for rank in 0..k.top_k {
                let d = k.results.get(mem, q * k.top_k + rank) as usize;
                let dist = k.distance(mem, q, d);
                assert!(dist >= prev, "results out of order for query {q}");
                prev = dist;
            }
        }
    }

    #[test]
    fn database_contains_duplicate_runs() {
        // dim 16 => one vector per 64 B block, so duplicated runs are
        // visible as repeated blocks.
        let k = Ferret::new(512, 16, 4, 8);
        let p = prepare(&k);
        let mut unique = std::collections::HashSet::new();
        for i in 0..512 {
            let b = p.image.block(k.db.addr(i * 16).block());
            unique.insert(*b.as_bytes());
        }
        assert!(
            unique.len() < 480,
            "expected duplicated/near-duplicated vectors: {} unique of 512",
            unique.len()
        );
    }

    #[test]
    fn nearest_is_globally_nearest() {
        let k = Ferret::new(48, 8, 2, 5);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 1);
        let mem = &mut p.image;
        for q in 0..2 {
            let top = k.results.get(mem, q * k.top_k) as usize;
            let top_dist = k.distance(mem, q, top);
            for d in 0..48 {
                assert!(
                    k.distance(mem, q, d) >= top_dist - 1e-6,
                    "query {q}: {d} closer than reported top"
                );
            }
        }
    }
}
