//! PARSEC `blackscholes`: closed-form European option pricing.
//!
//! Prices a portfolio of options with the Black-Scholes formula. As in
//! PARSEC, options are stored as an **array of records** (spot, strike,
//! rate, volatility, expiry — padded to eight floats), and the paper
//! annotates this input data set as approximate. Much of its exact
//! redundancy (§2: "a lot of exact redundancy in the parameters used
//! for computing prices") is reproduced by repeating whole block-aligned
//! runs of records and drawing rates/volatilities from small discrete
//! sets.

use crate::kernel::partition;
use crate::metrics::mean_relative_error;
use crate::{ArrayF32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// Number of repricing passes (PARSEC reprices the portfolio many
/// times; a few passes give the LLC time to reach steady state).
const PASSES: usize = 4;

/// Floats per option record (5 fields + 3 floats of padding, so two
/// records fill one 64 B cache block exactly).
const FIELDS: usize = 8;

/// The blackscholes kernel.
#[derive(Debug)]
/// # Example
///
/// ```
/// use dg_workloads::{kernels::Blackscholes, run_to_completion, prepare, Kernel};
/// let kernel = Blackscholes::new(128, 42);
/// let mut p = prepare(&kernel);
/// run_to_completion(&kernel, &mut p.image, 4);
/// let prices = kernel.output(&mut p.image);
/// assert_eq!(prices.len(), 256); // a call and a put per option
/// ```
pub struct Blackscholes {
    n: usize,
    seed: u64,
    /// Option records, AoS layout: `params[i*FIELDS + f]`.
    params: ArrayF32,
    call: ArrayF32,
    put: ArrayF32,
}

impl Blackscholes {
    /// A portfolio of `n` options.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut space = AddressSpace::new();
        let params = ArrayF32::new(space.alloc_blocks((4 * n * FIELDS) as u64), n * FIELDS);
        let call = ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        let put = ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        Blackscholes { n, seed, params, call, put }
    }

    fn field(&self, mem: &mut dyn Memory, i: usize, f: usize) -> f32 {
        self.params.get(mem, i * FIELDS + f)
    }

    #[cfg(test)]
    fn spot(&self, mem: &mut dyn Memory, i: usize) -> f32 {
        self.field(mem, i, 0)
    }

    #[cfg(test)]
    fn strike(&self, mem: &mut dyn Memory, i: usize) -> f32 {
        self.field(mem, i, 1)
    }

    #[cfg(test)]
    fn rate(&self, mem: &mut dyn Memory, i: usize) -> f32 {
        self.field(mem, i, 2)
    }

    #[cfg(test)]
    fn expiry(&self, mem: &mut dyn Memory, i: usize) -> f32 {
        self.field(mem, i, 4)
    }

    /// Cumulative normal distribution (Abramowitz & Stegun 26.2.17),
    /// the same polynomial approximation PARSEC uses.
    fn cndf(x: f32) -> f32 {
        let neg = x < 0.0;
        let x = x.abs();
        let k = 1.0 / (1.0 + 0.2316419 * x);
        let poly = k
            * (0.319_381_54
                + k * (-0.356_563_78 + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5))));
        let pdf = (-0.5 * x * x).exp() / (2.0 * std::f32::consts::PI).sqrt();
        let cnd = 1.0 - pdf * poly;
        if neg {
            1.0 - cnd
        } else {
            cnd
        }
    }

    fn price(s: f32, k: f32, r: f32, v: f32, t: f32) -> (f32, f32) {
        let sqrt_t = t.sqrt();
        let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let disc = (-r * t).exp();
        let call = s * Self::cndf(d1) - k * disc * Self::cndf(d2);
        let put = k * disc * Self::cndf(-d2) - s * Self::cndf(-d1);
        (call, put)
    }
}

impl Kernel for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0xb1ac);
        let rates = [0.025f32, 0.0275, 0.03, 0.0325];
        let vols = [0.10f32, 0.15, 0.20, 0.25, 0.30, 0.35];
        // Two records per 64 B block; repeat earlier block-aligned runs
        // of records with probability 0.45 (the same contracts recur
        // throughout a real portfolio).
        const CHUNK: usize = 2;
        let mut i = 0;
        while i < self.n {
            let end = (i + CHUNK).min(self.n);
            // `prior_chunks == 0` for the first chunk: there is nothing
            // to repeat yet, and `gen_range(0..0)` would panic on an
            // empty range. Make the guard explicit rather than relying
            // on short-circuit order.
            let prior_chunks = i / CHUNK;
            if prior_chunks > 0 && rng.gen_bool(0.45) {
                let src = rng.gen_range(0..prior_chunks) * CHUNK;
                // Half the repeats are bit-exact; half are the same
                // contract re-marked with noise far below the 14-bit
                // map resolution (bin width 200/2^14 ≈ 0.012) — they
                // defeat exact deduplication yet still share a
                // Doppelganger entry.
                let noise: f32 =
                    if rng.gen_bool(0.5) { 0.0 } else { rng.gen_range(1.0e-4..1.0e-3) };
                for k in 0..end - i {
                    for f in 0..FIELDS {
                        let v = self.params.get(mem, (src + k) * FIELDS + f);
                        let v = if v > 0.0 { v + noise } else { v };
                        self.params.set(mem, (i + k) * FIELDS + f, v);
                    }
                }
            } else {
                for rec in i..end {
                    let base = rec * FIELDS;
                    self.params.set(mem, base, rng.gen_range(10.0..150.0));
                    self.params.set(mem, base + 1, rng.gen_range(10.0..150.0));
                    self.params.set(mem, base + 2, rates[rng.gen_range(0..rates.len())]);
                    self.params.set(mem, base + 3, vols[rng.gen_range(0..vols.len())]);
                    self.params.set(mem, base + 4, rng.gen_range(0.25..4.0));
                    for f in 5..FIELDS {
                        self.params.set(mem, base + f, 0.0);
                    }
                }
            }
            i = end;
        }
        let mut t = AnnotationTable::new();
        t.add(self.params.annotation(0.0, 200.0));
        t
    }

    fn phases(&self) -> usize {
        PASSES
    }

    fn run_phase(&self, mem: &mut dyn Memory, _phase: usize, tid: usize, threads: usize) {
        for i in partition(self.n, tid, threads) {
            let s = self.field(mem, i, 0);
            let k = self.field(mem, i, 1);
            let r = self.field(mem, i, 2);
            let v = self.field(mem, i, 3);
            let t = self.field(mem, i, 4);
            mem.think(60); // CNDF polynomial + exp/ln/sqrt
            let (call, put) = Self::price(s, k, r, v, t);
            self.call.set(mem, i, call);
            self.put.set(mem, i, put);
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.n);
        for i in 0..self.n {
            out.push(self.call.get(mem, i) as f64);
        }
        for i in 0..self.n {
            out.push(self.put.get(mem, i) as f64);
        }
        out
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn prices_satisfy_put_call_parity() {
        let k = Blackscholes::new(64, 1);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 1);
        let mut mem = p.image;
        for i in 0..64 {
            let s = k.spot(&mut mem, i) as f64;
            let x = k.strike(&mut mem, i) as f64;
            let r = k.rate(&mut mem, i) as f64;
            let t = k.expiry(&mut mem, i) as f64;
            let call = k.call.get(&mut mem, i) as f64;
            let put = k.put.get(&mut mem, i) as f64;
            // C − P = S − K·e^(−rT)
            let lhs = call - put;
            let rhs = s - x * (-r * t).exp();
            assert!(
                (lhs - rhs).abs() < 0.05 * s.abs().max(1.0),
                "parity violated at {i}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn cndf_is_a_cdf() {
        assert!((Blackscholes::cndf(0.0) - 0.5).abs() < 1e-3);
        assert!(Blackscholes::cndf(5.0) > 0.999);
        assert!(Blackscholes::cndf(-5.0) < 0.001);
        // Monotone.
        assert!(Blackscholes::cndf(1.0) > Blackscholes::cndf(0.5));
    }

    #[test]
    fn prices_are_positive_and_bounded() {
        let k = Blackscholes::new(128, 2);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 2);
        let out = k.output(&mut p.image);
        for (i, v) in out.iter().enumerate() {
            assert!(*v >= -1e-3, "negative price at {i}: {v}");
            assert!(*v < 200.0, "implausible price at {i}: {v}");
        }
    }

    #[test]
    fn tiny_portfolios_set_up_without_panic() {
        // Regression: setup's repeat-a-prior-chunk branch must not draw
        // from an empty range when there is no prior chunk yet. Sweep
        // small n across several seeds so both branches are exercised.
        for n in 1..=5 {
            for seed in 0..8 {
                let k = Blackscholes::new(n, seed);
                let p = prepare(&k);
                drop(p);
            }
        }
    }

    #[test]
    fn records_repeat_across_portfolio() {
        // The duplication machinery must produce byte-identical blocks.
        let k = Blackscholes::new(1024, 7);
        let p = prepare(&k);
        let mut unique = std::collections::HashSet::new();
        let mut total = 0;
        for i in 0..1024 / 2 {
            let b = p.image.block(k.params.addr(i * 16).block());
            unique.insert(*b.as_bytes());
            total += 1;
        }
        assert!(
            (unique.len() as f64) < total as f64 * 0.8,
            "expected duplicated parameter blocks: {} unique of {total}",
            unique.len()
        );
    }
}
