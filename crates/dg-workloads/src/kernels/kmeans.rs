//! AxBench `kmeans`: k-means clustering.
//!
//! Lloyd's algorithm: alternate assigning points to their nearest
//! centroid and recomputing centroids as cluster means. Points and
//! centroids are annotated approximate (kmeans' approximate LLC
//! footprint is 59.6%, Table 2); the integer assignment array stays
//! precise. The error metric is the mean relative error of the final
//! centroid coordinates.

use crate::kernel::partition;
use crate::metrics::mean_relative_error;
use crate::{ArrayF32, ArrayI32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// The kmeans kernel.
#[derive(Debug)]
/// # Example
///
/// ```
/// use dg_workloads::{kernels::Kmeans, run_to_completion, prepare, Kernel};
/// let kernel = Kmeans::new(64, 4, 4, 2, 9);
/// let mut p = prepare(&kernel);
/// run_to_completion(&kernel, &mut p.image, 2);
/// assert_eq!(kernel.output(&mut p.image).len(), 16); // k x dim centroids
/// ```
pub struct Kmeans {
    points: usize,
    dim: usize,
    k: usize,
    iterations: usize,
    seed: u64,
    /// Point coordinates, row-major `points × dim`.
    data: ArrayF32,
    /// Centroid coordinates, row-major `k × dim`.
    centroids: ArrayF32,
    /// Current assignment of each point.
    assign: ArrayI32,
}

impl Kmeans {
    /// Cluster `points` `dim`-dimensional points into `k` clusters for
    /// `iterations` Lloyd iterations.
    pub fn new(points: usize, dim: usize, k: usize, iterations: usize, seed: u64) -> Self {
        assert!(points >= k && k > 0 && dim > 0 && iterations > 0);
        let mut space = AddressSpace::new();
        let data = ArrayF32::new(space.alloc_blocks((4 * points * dim) as u64), points * dim);
        let centroids = ArrayF32::new(space.alloc_blocks((4 * k * dim) as u64), k * dim);
        let assign = ArrayI32::new(space.alloc_blocks(4 * points as u64), points);
        Kmeans { points, dim, k, iterations, seed, data, centroids, assign }
    }

    fn distance2(&self, mem: &mut dyn Memory, point: usize, centroid: usize) -> f32 {
        let mut sum = 0.0;
        for j in 0..self.dim {
            let d = self.data.get(mem, point * self.dim + j)
                - self.centroids.get(mem, centroid * self.dim + j);
            sum += d * d;
        }
        mem.think(3 * self.dim as u32);
        sum
    }
}

impl Kernel for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x63a5);
        // AxBench's kmeans clusters image pixels: coordinates are
        // 8-bit-quantized color channels and flat image regions yield
        // many duplicate points.
        let centers: Vec<Vec<f32>> = (0..self.k)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.15..0.85)).collect())
            .collect();
        let quantize = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() / 255.0;
        // Flat image regions duplicate whole block-aligned runs of
        // points (`run` points cover whole 64 B blocks).
        let run = (16usize).div_ceil(self.dim).max(1);
        let mut i = 0;
        while i < self.points {
            let end = (i + run).min(self.points);
            // `prior_runs > 0` keeps the copy-source range nonempty
            // (equivalent to the old `i >= run` half of the guard);
            // `i >= self.k` leaves the centroid-seeding prefix fresh.
            let prior_runs = i / run;
            if prior_runs > 0 && i >= self.k && rng.gen_bool(0.35) {
                let src = rng.gen_range(0..prior_runs) * run;
                for k in 0..end - i {
                    for j in 0..self.dim {
                        let v = self.data.get(mem, (src + k) * self.dim + j);
                        self.data.set(mem, (i + k) * self.dim + j, v);
                    }
                }
            } else {
                for idx in i..end {
                    let c = &centers[idx % self.k];
                    for j in 0..self.dim {
                        let v = quantize(c[j] + rng.gen_range(-0.06f32..0.06));
                        self.data.set(mem, idx * self.dim + j, v);
                    }
                }
            }
            i = end;
        }
        // Initialize centroids to the first k points (standard seeding).
        for c in 0..self.k {
            for j in 0..self.dim {
                let v = self.data.get(mem, c * self.dim + j);
                self.centroids.set(mem, c * self.dim + j, v);
            }
        }
        for i in 0..self.points {
            self.assign.set(mem, i, 0);
        }
        let mut t = AnnotationTable::new();
        t.add(self.data.annotation(0.0, 1.0));
        t.add(self.centroids.annotation(0.0, 1.0));
        t
    }

    fn phases(&self) -> usize {
        2 * self.iterations
    }

    fn run_phase(&self, mem: &mut dyn Memory, phase: usize, tid: usize, threads: usize) {
        if phase.is_multiple_of(2) {
            // Assign step: each worker labels its partition.
            for i in partition(self.points, tid, threads) {
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for c in 0..self.k {
                    let d = self.distance2(mem, i, c);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                self.assign.set(mem, i, best as i32);
            }
        } else if tid == 0 {
            // Update step: a serial reduction over all points.
            let mut sums = vec![0.0f64; self.k * self.dim];
            let mut counts = vec![0u32; self.k];
            for i in 0..self.points {
                let c = self.assign.get(mem, i) as usize;
                counts[c] += 1;
                for j in 0..self.dim {
                    sums[c * self.dim + j] += self.data.get(mem, i * self.dim + j) as f64;
                }
                mem.think(2 * self.dim as u32);
            }
            for c in 0..self.k {
                if counts[c] == 0 {
                    continue; // keep an empty cluster's old centroid
                }
                for j in 0..self.dim {
                    let mean = (sums[c * self.dim + j] / counts[c] as f64) as f32;
                    self.centroids.set(mem, c * self.dim + j, mean);
                }
            }
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        (0..self.k * self.dim)
            .map(|i| self.centroids.get(mem, i) as f64)
            .collect()
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn clustering_tightens_inertia() {
        let k = Kmeans::new(256, 4, 4, 4, 8);
        let mut p = prepare(&k);
        let inertia = |k: &Kmeans, mem: &mut MemoryImage| -> f64 {
            (0..k.points)
                .map(|i| {
                    (0..k.k)
                        .map(|c| k.distance2(mem, i, c) as f64)
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        };
        let before = inertia(&k, &mut p.image);
        run_to_completion(&k, &mut p.image, 2);
        let after = inertia(&k, &mut p.image);
        assert!(after <= before, "k-means must not increase inertia: {before} -> {after}");
    }

    #[test]
    fn centroids_stay_in_unit_box() {
        let k = Kmeans::new(128, 4, 4, 3, 1);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 4);
        for v in k.output(&mut p.image) {
            assert!((0.0..=1.0).contains(&v), "centroid escaped: {v}");
        }
    }

    #[test]
    fn assignments_match_nearest_centroid_after_assign_phase() {
        let k = Kmeans::new(64, 4, 4, 1, 2);
        let mut p = prepare(&k);
        crate::run_phase_range(&k, &mut p.image, 0..1, 1);
        let mem = &mut p.image;
        for i in 0..64 {
            let assigned = k.assign.get(mem, i) as usize;
            let d_assigned = k.distance2(mem, i, assigned);
            for c in 0..4 {
                assert!(k.distance2(mem, i, c) >= d_assigned - 1e-6);
            }
        }
    }
}
