//! PARSEC `canneal`: simulated-annealing netlist placement.
//!
//! Elements live on a 2D grid; two-pin nets connect random element
//! pairs. The kernel repeatedly proposes swapping two elements'
//! positions and accepts the swap if it shortens total wirelength (or,
//! early on, if it lengthens it by less than the current temperature —
//! a deterministic annealing schedule). The paper's error metric is the
//! relative difference in final routing cost.
//!
//! Annotated approximate: the element coordinates — integer grid slots,
//! as in the real benchmark (the paper notes BΔI is very effective on
//! canneal's integer values). The netlist topology and adjacency
//! structures stay precise, matching canneal's ~38% approximate LLC
//! footprint (Table 2).

use crate::kernel::partition;
use crate::metrics::scalar_relative_error;
use crate::{ArrayI32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// Annealing temperature steps.
const STEPS: usize = 6;
/// Swap proposals per element per step (scaled by partition size).
const PROPOSALS_PER_ELEM: usize = 1;

/// The canneal kernel.
#[derive(Debug)]
pub struct Canneal {
    elements: usize,
    /// Movable elements; indices beyond this are filler cells pinned at
    /// the origin (standard-cell designs contain fill cells, which give
    /// canneal a run of identical zero blocks).
    active: usize,
    nets: usize,
    seed: u64,
    grid: i32,
    x: ArrayI32,
    y: ArrayI32,
    /// Net endpoints: `net_a[j]`–`net_b[j]`.
    net_a: ArrayI32,
    net_b: ArrayI32,
    /// CSR adjacency: nets touching element `i` are
    /// `adj_nets[adj_index[i] .. adj_index[i+1]]`.
    adj_index: ArrayI32,
    adj_nets: ArrayI32,
}

impl Canneal {
    /// A netlist of `elements` elements and `nets` two-pin nets.
    pub fn new(elements: usize, nets: usize, seed: u64) -> Self {
        assert!(elements >= 2 && nets > 0);
        let mut space = AddressSpace::new();
        let grid = ((elements as f32).sqrt() * 4.0) as i32;
        let x = ArrayI32::new(space.alloc_blocks(4 * elements as u64), elements);
        let y = ArrayI32::new(space.alloc_blocks(4 * elements as u64), elements);
        let net_a = ArrayI32::new(space.alloc_blocks(4 * nets as u64), nets);
        let net_b = ArrayI32::new(space.alloc_blocks(4 * nets as u64), nets);
        let adj_index = ArrayI32::new(space.alloc_blocks(4 * (elements + 1) as u64), elements + 1);
        let adj_nets = ArrayI32::new(space.alloc_blocks(4 * (2 * nets) as u64), 2 * nets);
        let active = (elements * 4 / 5).max(2);
        Canneal { elements, active, nets, seed, grid, x, y, net_a, net_b, adj_index, adj_nets }
    }

    /// Wirelength of net `j` (half-perimeter = Manhattan for 2 pins).
    fn net_len(&self, mem: &mut dyn Memory, j: usize) -> i64 {
        let a = self.net_a.get(mem, j) as usize;
        let b = self.net_b.get(mem, j) as usize;
        let dx = (self.x.get(mem, a) - self.x.get(mem, b)) as i64;
        let dy = (self.y.get(mem, a) - self.y.get(mem, b)) as i64;
        mem.think(6);
        dx.abs() + dy.abs()
    }

    /// Sum of lengths of all nets adjacent to element `e`.
    fn adjacent_cost(&self, mem: &mut dyn Memory, e: usize) -> i64 {
        let start = self.adj_index.get(mem, e) as usize;
        let end = self.adj_index.get(mem, e + 1) as usize;
        let mut cost = 0;
        for k in start..end {
            let j = self.adj_nets.get(mem, k) as usize;
            cost += self.net_len(mem, j);
        }
        cost
    }

    /// Total wirelength over all nets.
    fn total_cost(&self, mem: &mut dyn Memory) -> f64 {
        (0..self.nets).map(|j| self.net_len(mem, j) as f64).sum()
    }

    fn temperature(&self, step: usize) -> f32 {
        // Falls from grid/8 to 0 over the schedule.
        let frac = 1.0 - step as f32 / STEPS as f32;
        self.grid as f32 / 8.0 * frac * frac
    }

    /// Full placement scan (bounding-box statistics) — touches every
    /// element's coordinates, including the pinned filler cells, as the
    /// real benchmark's cost bookkeeping does.
    fn placement_scan(&self, mem: &mut dyn Memory) -> (i32, i32) {
        let mut max_x = 0;
        let mut max_y = 0;
        for i in 0..self.elements {
            max_x = max_x.max(self.x.get(mem, i));
            max_y = max_y.max(self.y.get(mem, i));
            mem.think(2);
        }
        (max_x, max_y)
    }
}

impl Kernel for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0xca11ea1);
        for i in 0..self.active {
            self.x.set(mem, i, rng.gen_range(0..self.grid));
            self.y.set(mem, i, rng.gen_range(0..self.grid));
        }
        // Filler cells sit at the origin and never move.
        for i in self.active..self.elements {
            self.x.set(mem, i, 0);
            self.y.set(mem, i, 0);
        }
        // Random nets among movable elements, biased toward nearby
        // indices so annealing has structure to exploit.
        let mut degree = vec![0u32; self.elements];
        for j in 0..self.nets {
            let a = rng.gen_range(0..self.active);
            let spread = (self.active / 16).max(2);
            let b = (a + rng.gen_range(1..spread)) % self.active;
            self.net_a.set(mem, j, a as i32);
            self.net_b.set(mem, j, b as i32);
            degree[a] += 1;
            degree[b] += 1;
        }
        // Build the CSR adjacency.
        let mut cursor = vec![0u32; self.elements + 1];
        for i in 0..self.elements {
            cursor[i + 1] = cursor[i] + degree[i];
        }
        for i in 0..=self.elements {
            self.adj_index.set(mem, i, cursor[i] as i32);
        }
        let mut fill = cursor.clone();
        for j in 0..self.nets {
            let a = self.net_a.get(mem, j) as usize;
            let b = self.net_b.get(mem, j) as usize;
            self.adj_nets.set(mem, fill[a] as usize, j as i32);
            fill[a] += 1;
            self.adj_nets.set(mem, fill[b] as usize, j as i32);
            fill[b] += 1;
        }
        let mut t = AnnotationTable::new();
        t.add(self.x.annotation(0.0, self.grid as f64));
        t.add(self.y.annotation(0.0, self.grid as f64));
        t
    }

    fn phases(&self) -> usize {
        STEPS
    }

    fn run_phase(&self, mem: &mut dyn Memory, phase: usize, tid: usize, threads: usize) {
        let temp = self.temperature(phase);
        // Work is split among a fixed number of virtual workers so the
        // proposal stream (and thus the result) does not depend on the
        // physical thread count.
        const VIRTUAL_WORKERS: usize = 4;
        for worker in (0..VIRTUAL_WORKERS).filter(|w| w % threads == tid % threads) {
            if worker == 0 {
                // Cost bookkeeping touches the whole placement once per
                // temperature step.
                let _ = self.placement_scan(mem);
            }
            self.run_worker(mem, phase, worker, VIRTUAL_WORKERS, temp);
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        vec![self.total_cost(mem)]
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        scalar_relative_error(precise[0], approx[0])
    }
}

impl Canneal {
    fn run_worker(
        &self,
        mem: &mut dyn Memory,
        phase: usize,
        worker: usize,
        workers: usize,
        temp: f32,
    ) {
        let range = partition(self.active, worker, workers);
        let mut rng =
            SplitMix64::seed_from_u64(self.seed ^ ((phase as u64) << 32) ^ ((worker as u64) << 16));
        let proposals = range.len() * PROPOSALS_PER_ELEM;
        for _ in 0..proposals {
            // Swap two elements from this worker's own partition (keeps
            // workers independent within a phase).
            let e1 = rng.gen_range(range.clone());
            let e2 = rng.gen_range(range.clone());
            if e1 == e2 {
                continue;
            }
            let before = self.adjacent_cost(mem, e1) + self.adjacent_cost(mem, e2);
            // Tentatively swap coordinates.
            let (x1, y1) = (self.x.get(mem, e1), self.y.get(mem, e1));
            let (x2, y2) = (self.x.get(mem, e2), self.y.get(mem, e2));
            self.x.set(mem, e1, x2);
            self.y.set(mem, e1, y2);
            self.x.set(mem, e2, x1);
            self.y.set(mem, e2, y1);
            let after = self.adjacent_cost(mem, e1) + self.adjacent_cost(mem, e2);
            mem.think(12);
            if (after - before) as f32 > temp {
                // Reject: restore.
                self.x.set(mem, e1, x1);
                self.y.set(mem, e1, y1);
                self.x.set(mem, e2, x2);
                self.y.set(mem, e2, y2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn annealing_reduces_cost() {
        let k = Canneal::new(512, 1500, 9);
        let mut p = prepare(&k);
        let before = k.total_cost(&mut p.image);
        run_to_completion(&k, &mut p.image, 1);
        let after = k.total_cost(&mut p.image);
        assert!(
            after < before * 0.9,
            "annealing should cut wirelength: {before} -> {after}"
        );
    }

    #[test]
    fn adjacency_is_consistent() {
        let k = Canneal::new(128, 300, 3);
        let mut p = prepare(&k);
        let mem = &mut p.image;
        // Every net appears exactly twice in the adjacency lists.
        let mut count = vec![0u32; 300];
        let total = k.adj_index.get(mem, 128) as usize;
        assert_eq!(total, 600);
        for kidx in 0..total {
            count[k.adj_nets.get(mem, kidx) as usize] += 1;
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    fn filler_cells_stay_pinned_at_origin() {
        let k = Canneal::new(256, 600, 5);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 4);
        let mem = &mut p.image;
        for i in k.active..k.elements {
            assert_eq!(k.x.get(mem, i), 0, "filler {i} moved");
            assert_eq!(k.y.get(mem, i), 0, "filler {i} moved");
        }
        assert!(k.active < k.elements, "some fillers must exist");
    }

    #[test]
    fn coordinates_are_integer_grid_slots() {
        let k = Canneal::new(128, 300, 2);
        let p = prepare(&k);
        let mem = &mut p.image.clone();
        for i in 0..k.elements {
            let x = k.x.get(mem, i);
            let y = k.y.get(mem, i);
            assert!((0..k.grid).contains(&x) || x == 0);
            assert!((0..k.grid).contains(&y) || y == 0);
        }
    }

    #[test]
    fn placement_scan_reports_bounds() {
        let k = Canneal::new(64, 120, 9);
        let mut p = prepare(&k);
        let (mx, my) = k.placement_scan(&mut p.image);
        assert!(mx > 0 && mx < k.grid);
        assert!(my > 0 && my < k.grid);
    }

    #[test]
    fn temperature_schedule_decreases_to_zero() {
        let k = Canneal::new(64, 100, 0);
        let temps: Vec<f32> = (0..STEPS).map(|s| k.temperature(s)).collect();
        assert!(temps.windows(2).all(|w| w[1] <= w[0]));
        assert!(temps[STEPS - 1] < temps[0] * 0.1);
    }
}
