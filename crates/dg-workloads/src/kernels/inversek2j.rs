//! AxBench `inversek2j`: inverse kinematics for a 2-joint arm.
//!
//! For each target point `(x, y)` reachable by a two-link arm, compute
//! the joint angles `(θ1, θ2)` in closed form. Nearly the entire data
//! footprint — the targets and the angle outputs — is annotated
//! approximate, matching inversek2j's 99.7% approximate LLC footprint
//! (Table 2).

use crate::kernel::partition;
use crate::metrics::mean_relative_error;
use crate::{ArrayF32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;
use std::f32::consts::PI;

/// Link lengths of the arm.
const L1: f32 = 0.5;
const L2: f32 = 0.5;

/// The inversek2j kernel.
#[derive(Debug)]
/// # Example
///
/// ```
/// use dg_workloads::{kernels::Inversek2j, run_to_completion, prepare, Kernel};
/// let kernel = Inversek2j::new(64, 1);
/// let mut p = prepare(&kernel);
/// run_to_completion(&kernel, &mut p.image, 1);
/// let angles = kernel.output(&mut p.image);
/// assert_eq!(angles.len(), 128); // theta1 and theta2 per target
/// ```
pub struct Inversek2j {
    n: usize,
    seed: u64,
    tx: ArrayF32,
    ty: ArrayF32,
    theta1: ArrayF32,
    theta2: ArrayF32,
}

impl Inversek2j {
    /// `n` target points.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut space = AddressSpace::new();
        let alloc = |space: &mut AddressSpace| ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        Inversek2j {
            n,
            seed,
            tx: alloc(&mut space),
            ty: alloc(&mut space),
            theta1: alloc(&mut space),
            theta2: alloc(&mut space),
        }
    }

    /// Closed-form 2-joint inverse kinematics (elbow-down solution).
    fn solve(x: f32, y: f32) -> (f32, f32) {
        let d2 = x * x + y * y;
        let cos_t2 = ((d2 - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
        let t2 = cos_t2.acos();
        let k1 = L1 + L2 * cos_t2;
        let k2 = L2 * t2.sin();
        let t1 = y.atan2(x) - k2.atan2(k1);
        (t1, t2)
    }

    /// Forward kinematics, for validation.
    #[cfg(test)]
    fn forward(t1: f32, t2: f32) -> (f32, f32) {
        let x = L1 * t1.cos() + L2 * (t1 + t2).cos();
        let y = L1 * t1.sin() + L2 * (t1 + t2).sin();
        (x, y)
    }
}

impl Kernel for Inversek2j {
    fn name(&self) -> &'static str {
        "inversek2j"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x1c2);
        for i in 0..self.n {
            // Reachable targets: radius within (0.2, 0.95), smooth path
            // so consecutive targets are similar (a robot sweep).
            let sweep = i as f32 / self.n as f32 * 2.0 * PI;
            let r = 0.55 + 0.35 * (3.0 * sweep).sin() * rng.gen_range(0.9f32..1.0);
            let phi = sweep + rng.gen_range(-0.02f32..0.02);
            self.tx.set(mem, i, r * phi.cos());
            self.ty.set(mem, i, r * phi.sin());
        }
        let mut t = AnnotationTable::new();
        let reach = (L1 + L2) as f64;
        t.add(self.tx.annotation(-reach, reach));
        t.add(self.ty.annotation(-reach, reach));
        t.add(self.theta1.annotation(-2.0 * PI as f64, 2.0 * PI as f64));
        t.add(self.theta2.annotation(0.0, PI as f64));
        t
    }

    fn phases(&self) -> usize {
        1
    }

    fn run_phase(&self, mem: &mut dyn Memory, _phase: usize, tid: usize, threads: usize) {
        for i in partition(self.n, tid, threads) {
            let x = self.tx.get(mem, i);
            let y = self.ty.get(mem, i);
            mem.think(40); // acos/atan2/sqrt chain
            let (t1, t2) = Self::solve(x, y);
            self.theta1.set(mem, i, t1);
            self.theta2.set(mem, i, t2);
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.n);
        for i in 0..self.n {
            out.push(self.theta1.get(mem, i) as f64);
        }
        for i in 0..self.n {
            out.push(self.theta2.get(mem, i) as f64);
        }
        out
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn inverse_then_forward_recovers_target() {
        let k = Inversek2j::new(128, 4);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 1);
        let mem = &mut p.image;
        for i in 0..128 {
            let (tx, ty) = (k.tx.get(mem, i), k.ty.get(mem, i));
            let (t1, t2) = (k.theta1.get(mem, i), k.theta2.get(mem, i));
            let (fx, fy) = Inversek2j::forward(t1, t2);
            assert!(
                (fx - tx).abs() < 1e-3 && (fy - ty).abs() < 1e-3,
                "IK wrong at {i}: target ({tx},{ty}), got ({fx},{fy})"
            );
        }
    }

    #[test]
    fn targets_are_reachable() {
        let k = Inversek2j::new(64, 1);
        let mut p = prepare(&k);
        let mem = &mut p.image;
        for i in 0..64 {
            let (x, y) = (k.tx.get(mem, i), k.ty.get(mem, i));
            let r = (x * x + y * y).sqrt();
            assert!(r <= L1 + L2, "target {i} unreachable (r={r})");
            assert!(r >= (L1 - L2).abs(), "target {i} inside dead zone");
        }
    }
}
