//! AxBench `jmeint`: triangle-triangle intersection tests.
//!
//! For each pair of 3D triangles, decide whether they intersect
//! (a separating-axis test). The triangle coordinates are annotated
//! approximate; jmeint's approximate LLC footprint is 94.7% (Table 2).
//! The error metric is the fraction of misclassified pairs.

use crate::kernel::partition;
use crate::metrics::mismatch_rate;
use crate::{ArrayF32, ArrayI32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// Floats per pair: two triangles × three vertices × xyz.
const FLOATS_PER_PAIR: usize = 18;

type Vec3 = [f32; 3];
type Tri = [Vec3; 3];

/// The jmeint kernel.
#[derive(Debug)]
pub struct Jmeint {
    pairs: usize,
    seed: u64,
    coords: ArrayF32,
    result: ArrayI32,
}

impl Jmeint {
    /// `pairs` triangle pairs.
    pub fn new(pairs: usize, seed: u64) -> Self {
        assert!(pairs > 0);
        let mut space = AddressSpace::new();
        let coords =
            ArrayF32::new(space.alloc_blocks((4 * pairs * FLOATS_PER_PAIR) as u64), pairs * FLOATS_PER_PAIR);
        let result = ArrayI32::new(space.alloc_blocks(4 * pairs as u64), pairs);
        Jmeint { pairs, seed, coords, result }
    }

    fn load_tri(&self, mem: &mut dyn Memory, pair: usize, which: usize) -> Tri {
        let base = pair * FLOATS_PER_PAIR + which * 9;
        let mut t = [[0.0f32; 3]; 3];
        for v in 0..3 {
            for c in 0..3 {
                t[v][c] = self.coords.get(mem, base + v * 3 + c);
            }
        }
        t
    }

    fn sub(a: Vec3, b: Vec3) -> Vec3 {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
    }

    fn cross(a: Vec3, b: Vec3) -> Vec3 {
        [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]
    }

    fn dot(a: Vec3, b: Vec3) -> f32 {
        a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
    }

    /// Signed distances of `t`'s vertices from the plane of `other`.
    fn plane_distances(t: &Tri, other: &Tri) -> [f32; 3] {
        let n = Self::cross(Self::sub(other[1], other[0]), Self::sub(other[2], other[0]));
        let d = -Self::dot(n, other[0]);
        [
            Self::dot(n, t[0]) + d,
            Self::dot(n, t[1]) + d,
            Self::dot(n, t[2]) + d,
        ]
    }

    /// Separating-axis triangle-triangle intersection (Möller-style:
    /// plane rejection tests, then axis tests on edge cross products).
    fn intersects(t1: &Tri, t2: &Tri) -> bool {
        let d1 = Self::plane_distances(t1, t2);
        if d1.iter().all(|&d| d > 1e-7) || d1.iter().all(|&d| d < -1e-7) {
            return false;
        }
        let d2 = Self::plane_distances(t2, t1);
        if d2.iter().all(|&d| d > 1e-7) || d2.iter().all(|&d| d < -1e-7) {
            return false;
        }
        // Full SAT over the 9 edge-pair cross products plus face normals.
        let edges1 = [
            Self::sub(t1[1], t1[0]),
            Self::sub(t1[2], t1[1]),
            Self::sub(t1[0], t1[2]),
        ];
        let edges2 = [
            Self::sub(t2[1], t2[0]),
            Self::sub(t2[2], t2[1]),
            Self::sub(t2[0], t2[2]),
        ];
        let n1 = Self::cross(edges1[0], edges1[1]);
        let n2 = Self::cross(edges2[0], edges2[1]);
        let mut axes: Vec<Vec3> = Vec::with_capacity(17);
        axes.push(n1);
        axes.push(n2);
        for e1 in &edges1 {
            for e2 in &edges2 {
                axes.push(Self::cross(*e1, *e2));
            }
        }
        // In-plane edge normals handle the coplanar case, where every
        // edge-pair cross product is parallel to the face normal.
        for e in &edges1 {
            axes.push(Self::cross(n1, *e));
        }
        for e in &edges2 {
            axes.push(Self::cross(n2, *e));
        }
        for axis in axes {
            if Self::dot(axis, axis) < 1e-12 {
                continue;
            }
            let p1: Vec<f32> = t1.iter().map(|&v| Self::dot(axis, v)).collect();
            let p2: Vec<f32> = t2.iter().map(|&v| Self::dot(axis, v)).collect();
            let (min1, max1) = (
                p1.iter().cloned().fold(f32::INFINITY, f32::min),
                p1.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
            );
            let (min2, max2) = (
                p2.iter().cloned().fold(f32::INFINITY, f32::min),
                p2.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
            );
            if max1 < min2 || max2 < min1 {
                return false; // separating axis found
            }
        }
        true
    }
}

impl Kernel for Jmeint {
    fn name(&self) -> &'static str {
        "jmeint"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x13e);
        // Triangles come from meshes: vertices are drawn from a shared
        // pool and whole triangles recur across pairs (adjacent faces
        // of the same model are tested against many partners). This is
        // where jmeint's block-granularity similarity comes from
        // despite its poor element-wise similarity (paper §2 vs §5.1).
        let pool_size = (self.pairs / 2).max(8);
        let pool: Vec<[f32; 3]> = (0..pool_size)
            .map(|_| {
                [
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                    rng.gen_range(0.0..1.0f32),
                ]
            })
            .collect();
        // A library of triangles over the pooled vertices.
        let tri_lib: Vec<[usize; 3]> = (0..pool_size)
            .map(|i| {
                let a = i;
                let b = (i + 1 + rng.gen_range(0..4usize)) % pool_size;
                let c = (i + 5 + rng.gen_range(0..7usize)) % pool_size;
                [a, b, c]
            })
            .collect();
        for p in 0..self.pairs {
            for which in 0..2 {
                let tri = &tri_lib[rng.gen_range(0..tri_lib.len())];
                // A small jitter moves one model relative to the other.
                let jitter: f32 = if which == 1 { rng.gen_range(-0.05..0.05) } else { 0.0 };
                for v in 0..3 {
                    let base = p * FLOATS_PER_PAIR + which * 9 + v * 3;
                    let vert = pool[tri[v]];
                    for c in 0..3 {
                        self.coords
                            .set(mem, base + c, (vert[c] + jitter).clamp(0.0, 1.0));
                    }
                }
            }
        }
        let mut t = AnnotationTable::new();
        t.add(self.coords.annotation(0.0, 1.0));
        t
    }

    fn phases(&self) -> usize {
        1
    }

    fn run_phase(&self, mem: &mut dyn Memory, _phase: usize, tid: usize, threads: usize) {
        for p in partition(self.pairs, tid, threads) {
            let t1 = self.load_tri(mem, p, 0);
            let t2 = self.load_tri(mem, p, 1);
            mem.think(180); // SAT axis tests
            let hit = Self::intersects(&t1, &t2);
            self.result.set(mem, p, hit as i32);
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        (0..self.pairs).map(|p| self.result.get(mem, p) as f64).collect()
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mismatch_rate(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    fn tri(a: Vec3, b: Vec3, c: Vec3) -> Tri {
        [a, b, c]
    }

    #[test]
    fn coplanar_far_triangles_do_not_intersect() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let t2 = tri([10.0, 10.0, 0.0], [11.0, 10.0, 0.0], [10.0, 11.0, 0.0]);
        assert!(!Jmeint::intersects(&t1, &t2));
    }

    #[test]
    fn piercing_triangles_intersect() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        // A triangle crossing through t1's plane inside it.
        let t2 = tri([0.2, 0.2, -0.5], [0.3, 0.2, 0.5], [0.2, 0.3, 0.5]);
        assert!(Jmeint::intersects(&t1, &t2));
    }

    #[test]
    fn parallel_offset_triangles_do_not_intersect() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let t2 = tri([0.0, 0.0, 0.1], [1.0, 0.0, 0.1], [0.0, 1.0, 0.1]);
        assert!(!Jmeint::intersects(&t1, &t2));
    }

    #[test]
    fn workload_produces_mixed_classifications() {
        let k = Jmeint::new(512, 3);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 2);
        let out = k.output(&mut p.image);
        let positives = out.iter().filter(|&&v| v == 1.0).count();
        // The generator aims for a healthy mix of outcomes.
        assert!(positives > 50 && positives < 462, "got {positives}/512 intersections");
    }
}
