//! AxBench `jpeg`: DCT + quantization image codec.
//!
//! Encodes a grayscale image 8×8 block at a time — forward DCT,
//! quantization with the standard JPEG luminance table — then decodes it
//! back (dequantize, inverse DCT). Input pixels, coefficient planes and
//! the decoded output are all annotated approximate (jpeg's approximate
//! LLC footprint is 98.4%, Table 2). The error metric is the decoded
//! image's RMSE, normalized to the 255 pixel range.

use crate::kernel::partition;
use crate::metrics::normalized_rmse;
use crate::{ArrayF32, ArrayU8, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;
use std::f32::consts::PI;

/// The standard JPEG luminance quantization table (quality ~50).
#[rustfmt::skip]
const QTABLE: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0,
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0,
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0,
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0,
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0,
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0,
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0,
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// The jpeg kernel.
#[derive(Debug)]
/// # Example
///
/// ```
/// use dg_workloads::{kernels::Jpeg, run_to_completion, prepare, Kernel};
/// let kernel = Jpeg::new(16, 16, 3);
/// let mut p = prepare(&kernel);
/// run_to_completion(&kernel, &mut p.image, 1);
/// let decoded = kernel.output(&mut p.image);
/// assert_eq!(decoded.len(), 256);
/// assert!(decoded.iter().all(|&v| (0.0..=255.0).contains(&v)));
/// ```
pub struct Jpeg {
    width: usize,
    height: usize,
    seed: u64,
    input: ArrayU8,
    /// Quantized DCT coefficients (stored as f32 planes).
    coeffs: ArrayF32,
    output: ArrayU8,
}

impl Jpeg {
    /// A `width × height` grayscale image (both multiples of 8).
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive multiples of 8.
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        assert!(
            width.is_multiple_of(8) && height.is_multiple_of(8) && width > 0 && height > 0,
            "image dimensions must be positive multiples of 8"
        );
        let n = width * height;
        let mut space = AddressSpace::new();
        let input = ArrayU8::new(space.alloc_blocks(n as u64), n);
        let coeffs = ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        let output = ArrayU8::new(space.alloc_blocks(n as u64), n);
        Jpeg { width, height, seed, input, coeffs, output }
    }

    fn blocks(&self) -> usize {
        (self.width / 8) * (self.height / 8)
    }

    fn block_origin(&self, b: usize) -> (usize, usize) {
        let bw = self.width / 8;
        ((b % bw) * 8, (b / bw) * 8)
    }

    fn dct_coef(u: usize, x: usize) -> f32 {
        let cu = if u == 0 { (0.5f32).sqrt() } else { 1.0 };
        0.5 * cu * ((2 * x + 1) as f32 * u as f32 * PI / 16.0).cos()
    }

    fn forward_block(&self, mem: &mut dyn Memory, b: usize) {
        let (ox, oy) = self.block_origin(b);
        // Load the 8x8 tile, centered around 0.
        let mut tile = [[0.0f32; 8]; 8];
        for y in 0..8 {
            for x in 0..8 {
                tile[y][x] = self.input.get(mem, (oy + y) * self.width + ox + x) as f32 - 128.0;
            }
        }
        for v in 0..8 {
            for u in 0..8 {
                let mut acc = 0.0;
                for y in 0..8 {
                    for x in 0..8 {
                        acc += tile[y][x] * Self::dct_coef(u, x) * Self::dct_coef(v, y);
                    }
                }
                mem.think(140);
                let q = (acc / QTABLE[v * 8 + u]).round();
                self.coeffs.set(mem, (oy + v) * self.width + ox + u, q);
            }
        }
    }

    fn inverse_block(&self, mem: &mut dyn Memory, b: usize) {
        let (ox, oy) = self.block_origin(b);
        let mut coeff = [[0.0f32; 8]; 8];
        for v in 0..8 {
            for u in 0..8 {
                coeff[v][u] =
                    self.coeffs.get(mem, (oy + v) * self.width + ox + u) * QTABLE[v * 8 + u];
            }
        }
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0.0;
                for v in 0..8 {
                    for u in 0..8 {
                        acc += coeff[v][u] * Self::dct_coef(u, x) * Self::dct_coef(v, y);
                    }
                }
                mem.think(140);
                let pixel = (acc + 128.0).round().clamp(0.0, 255.0) as u8;
                self.output.set(mem, (oy + y) * self.width + ox + x, pixel);
            }
        }
    }
}

impl Kernel for Jpeg {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x39e6);
        // A natural-looking test card: smooth gradients + soft blobs +
        // mild noise, so neighbouring blocks are approximately similar
        // (the paper's Fig. 1 scenario).
        let blobs: Vec<(f32, f32, f32, f32)> = (0..6)
            .map(|_| {
                (
                    rng.gen_range(0.0..self.width as f32),
                    rng.gen_range(0.0..self.height as f32),
                    rng.gen_range(12.0..40.0),
                    rng.gen_range(30.0..90.0),
                )
            })
            .collect();
        for y in 0..self.height {
            for x in 0..self.width {
                let mut v = 90.0
                    + 50.0 * (x as f32 / self.width as f32)
                    + 25.0 * (y as f32 / self.height as f32);
                for &(bx, by, r, a) in &blobs {
                    let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                    v += a * (-d2 / (2.0 * r * r)).exp();
                }
                v += rng.gen_range(-3.0f32..3.0);
                self.input.set(mem, y * self.width + x, v.clamp(0.0, 255.0) as u8);
            }
        }
        let mut t = AnnotationTable::new();
        t.add(self.input.annotation(0.0, 255.0));
        t.add(self.coeffs.annotation(-128.0, 128.0));
        t.add(self.output.annotation(0.0, 255.0));
        t
    }

    fn phases(&self) -> usize {
        2 // forward+quantize, then dequantize+inverse
    }

    fn run_phase(&self, mem: &mut dyn Memory, phase: usize, tid: usize, threads: usize) {
        for b in partition(self.blocks(), tid, threads) {
            if phase == 0 {
                self.forward_block(mem, b);
            } else {
                self.inverse_block(mem, b);
            }
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        (0..self.width * self.height)
            .map(|i| self.output.get(mem, i) as f64)
            .collect()
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        normalized_rmse(precise, approx, 255.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn codec_roughly_preserves_the_image() {
        let k = Jpeg::new(32, 32, 6);
        let mut p = prepare(&k);
        let original: Vec<f64> = {
            let mem = &mut p.image;
            (0..32 * 32).map(|i| k.input.get(mem, i) as f64).collect()
        };
        run_to_completion(&k, &mut p.image, 1);
        let decoded = k.output(&mut p.image);
        let err = normalized_rmse(&original, &decoded, 255.0);
        // Quality-50 JPEG on a smooth image: a few percent RMSE.
        assert!(err < 0.08, "codec destroyed the image: RMSE {err}");
        assert!(err > 0.0, "lossless would be suspicious at quality 50");
    }

    #[test]
    fn dct_basis_is_orthonormal() {
        for u in 0..8 {
            for v in 0..8 {
                let dot: f32 = (0..8)
                    .map(|x| Jpeg::dct_coef(u, x) * Jpeg::dct_coef(v, x))
                    .sum();
                let expect = if u == v { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-5, "basis {u},{v}: {dot}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn rejects_unaligned_dimensions() {
        Jpeg::new(30, 32, 0);
    }
}
