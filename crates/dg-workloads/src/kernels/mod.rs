//! The nine paper benchmarks (PARSEC + AxBench re-implementations).
//!
//! | kernel | suite | algorithm | approximate data (annotated) | error metric |
//! |---|---|---|---|---|
//! | [`Blackscholes`] | PARSEC | closed-form option pricing | option parameters | mean relative price error |
//! | [`Canneal`] | PARSEC | simulated-annealing placement | element coordinates | relative routing-cost error |
//! | [`Ferret`] | PARSEC | content-based similarity search | feature vectors | top-K rank mismatch |
//! | [`Fluidanimate`] | PARSEC | SPH fluid simulation | particle densities | mean relative position error |
//! | [`Inversek2j`] | AxBench | 2-joint inverse kinematics | target and angle arrays | mean relative angle error |
//! | [`Jmeint`] | AxBench | triangle-pair intersection | triangle coordinates | classification mismatch rate |
//! | [`Jpeg`] | AxBench | DCT + quantization codec | image planes and coefficients | normalized RMSE |
//! | [`Kmeans`] | AxBench | k-means clustering | point and centroid coordinates | mean relative centroid error |
//! | [`Swaptions`] | PARSEC | Monte-Carlo swaption pricing | swaption parameters | mean relative price error |

mod blackscholes;
mod canneal;
mod ferret;
mod fluidanimate;
mod inversek2j;
mod jmeint;
mod jpeg;
mod kmeans;
mod swaptions;

pub use blackscholes::Blackscholes;
pub use canneal::Canneal;
pub use ferret::Ferret;
pub use fluidanimate::Fluidanimate;
pub use inversek2j::Inversek2j;
pub use jmeint::Jmeint;
pub use jpeg::Jpeg;
pub use kmeans::Kmeans;
pub use swaptions::Swaptions;

#[cfg(test)]
mod suite_tests {
    use crate::{prepare, run_to_completion};

    /// Shared smoke test: every kernel sets up, runs with 1 and 4
    /// threads, and produces identical output on a precise memory
    /// (thread count must not change precise semantics).
    #[test]
    fn all_kernels_are_thread_count_invariant() {
        for kernel in crate::small_suite(7) {
            let mut p1 = prepare(kernel.as_ref());
            run_to_completion(kernel.as_ref(), &mut p1.image, 1);
            let out1 = kernel.output(&mut p1.image);

            let mut p4 = prepare(kernel.as_ref());
            run_to_completion(kernel.as_ref(), &mut p4.image, 4);
            let out4 = kernel.output(&mut p4.image);

            assert_eq!(out1, out4, "{} differs across thread counts", kernel.name());
            assert!(!out1.is_empty(), "{} has empty output", kernel.name());
        }
    }

    /// Every kernel is deterministic in its seed.
    #[test]
    fn all_kernels_deterministic() {
        for (a, b) in crate::small_suite(3).into_iter().zip(crate::small_suite(3)) {
            let mut pa = prepare(a.as_ref());
            run_to_completion(a.as_ref(), &mut pa.image, 2);
            let mut pb = prepare(b.as_ref());
            run_to_completion(b.as_ref(), &mut pb.image, 2);
            assert_eq!(a.output(&mut pa.image), b.output(&mut pb.image), "{}", a.name());
        }
    }

    /// Every kernel annotates at least one approximate region, and the
    /// error metric is zero for identical outputs.
    #[test]
    fn annotations_and_zero_error() {
        for kernel in crate::small_suite(5) {
            let mut p = prepare(kernel.as_ref());
            assert!(
                !p.annotations.is_empty(),
                "{} has no approximate annotations",
                kernel.name()
            );
            run_to_completion(kernel.as_ref(), &mut p.image, 1);
            let out = kernel.output(&mut p.image);
            let err = kernel.error_metric(&out, &out);
            assert_eq!(err, 0.0, "{} self-error nonzero", kernel.name());
        }
    }
}
