//! PARSEC `fluidanimate`: smoothed-particle-hydrodynamics fluid step.
//!
//! Particles on a 2D domain are binned into grid cells; densities are
//! computed from neighbors within the smoothing radius, then a pressure
//! force (from density differences) and gravity integrate velocities
//! and positions.
//!
//! Annotated approximate: only the particle **density** array — the
//! positions, velocities and cell lists stay precise, matching
//! fluidanimate's tiny approximate LLC footprint (Table 2: 3.6%).

use crate::kernel::partition;
use crate::metrics::mean_relative_error;
use crate::{ArrayF32, ArrayI32, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// Phases per timestep: rebuild cells, density, integrate.
const PHASES_PER_STEP: usize = 3;
/// Smoothing radius in domain units (= cell size).
const H: f32 = 1.0;
/// Rest density the pressure force pulls toward.
const REST_DENSITY: f32 = 2.5;

/// The fluidanimate kernel.
#[derive(Debug)]
pub struct Fluidanimate {
    particles: usize,
    steps: usize,
    seed: u64,
    cells_per_side: usize,
    domain: f32,
    px: ArrayF32,
    py: ArrayF32,
    vx: ArrayF32,
    vy: ArrayF32,
    density: ArrayF32,
    /// CSR cell lists: particles of cell `c` are
    /// `cell_particles[cell_start[c] .. cell_start[c+1]]`.
    cell_start: ArrayI32,
    cell_particles: ArrayI32,
}

impl Fluidanimate {
    /// A fluid of `particles` particles simulated for `steps` steps.
    pub fn new(particles: usize, steps: usize, seed: u64) -> Self {
        assert!(particles > 0 && steps > 0);
        // Aim for ~2 particles per cell.
        let cells_per_side = ((particles as f32 / 2.0).sqrt().ceil() as usize).max(2);
        let domain = cells_per_side as f32 * H;
        let mut space = AddressSpace::new();
        let alloc_f = |space: &mut AddressSpace, n: usize| ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        let alloc_i = |space: &mut AddressSpace, n: usize| ArrayI32::new(space.alloc_blocks(4 * n as u64), n);
        let cells = cells_per_side * cells_per_side;
        Fluidanimate {
            particles,
            steps,
            seed,
            cells_per_side,
            domain,
            px: alloc_f(&mut space, particles),
            py: alloc_f(&mut space, particles),
            vx: alloc_f(&mut space, particles),
            vy: alloc_f(&mut space, particles),
            density: alloc_f(&mut space, particles),
            cell_start: alloc_i(&mut space, cells + 1),
            cell_particles: alloc_i(&mut space, particles),
        }
    }

    fn cell_of(&self, x: f32, y: f32) -> usize {
        let cx = ((x / H) as usize).min(self.cells_per_side - 1);
        let cy = ((y / H) as usize).min(self.cells_per_side - 1);
        cy * self.cells_per_side + cx
    }

    /// Rebuild the CSR cell lists (single-threaded phase).
    fn rebuild_cells(&self, mem: &mut dyn Memory) {
        let cells = self.cells_per_side * self.cells_per_side;
        let mut counts = vec![0i32; cells];
        let mut cell_of_particle = vec![0usize; self.particles];
        for i in 0..self.particles {
            let c = self.cell_of(self.px.get(mem, i), self.py.get(mem, i));
            cell_of_particle[i] = c;
            counts[c] += 1;
            mem.think(4);
        }
        let mut start = 0i32;
        for c in 0..cells {
            self.cell_start.set(mem, c, start);
            start += counts[c];
        }
        self.cell_start.set(mem, cells, start);
        let mut fill: Vec<i32> = (0..cells).map(|c| self.cell_start.get(mem, c)).collect();
        for i in 0..self.particles {
            let c = cell_of_particle[i];
            self.cell_particles.set(mem, fill[c] as usize, i as i32);
            fill[c] += 1;
        }
    }

    /// SPH poly6-style kernel weight.
    fn weight(r2: f32) -> f32 {
        let h2 = H * H;
        if r2 >= h2 {
            0.0
        } else {
            let d = h2 - r2;
            d * d * d / (h2 * h2 * h2)
        }
    }

    fn compute_density(&self, mem: &mut dyn Memory, i: usize) -> f32 {
        let xi = self.px.get(mem, i);
        let yi = self.py.get(mem, i);
        let cx = ((xi / H) as isize).clamp(0, self.cells_per_side as isize - 1);
        let cy = ((yi / H) as isize).clamp(0, self.cells_per_side as isize - 1);
        let mut rho = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                let nx = cx + dx;
                let ny = cy + dy;
                if nx < 0 || ny < 0 || nx >= self.cells_per_side as isize || ny >= self.cells_per_side as isize
                {
                    continue;
                }
                let c = ny as usize * self.cells_per_side + nx as usize;
                let s = self.cell_start.get(mem, c) as usize;
                let e = self.cell_start.get(mem, c + 1) as usize;
                for k in s..e {
                    let j = self.cell_particles.get(mem, k) as usize;
                    let dx = xi - self.px.get(mem, j);
                    let dy = yi - self.py.get(mem, j);
                    rho += Self::weight(dx * dx + dy * dy);
                    mem.think(8);
                }
            }
        }
        rho
    }
}

impl Kernel for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0xf1d);
        // A dam-break block of fluid in the lower-left quadrant.
        for i in 0..self.particles {
            self.px.set(mem, i, rng.gen_range(0.0..self.domain * 0.5));
            self.py.set(mem, i, rng.gen_range(0.0..self.domain * 0.6));
            self.vx.set(mem, i, 0.0);
            self.vy.set(mem, i, 0.0);
        }
        // Initialize densities from the initial placement (PARSEC
        // computes rest-state densities up front), so the approximate
        // array starts with real values rather than zeros.
        self.rebuild_cells(mem);
        for i in 0..self.particles {
            let rho = self.compute_density(mem, i);
            self.density.set(mem, i, rho);
        }
        let mut t = AnnotationTable::new();
        // Densities are bounded by the kernel's value at r=0 times the
        // worst-case neighbor count.
        t.add(self.density.annotation(0.0, 64.0));
        t
    }

    fn phases(&self) -> usize {
        self.steps * PHASES_PER_STEP
    }

    fn run_phase(&self, mem: &mut dyn Memory, phase: usize, tid: usize, threads: usize) {
        match phase % PHASES_PER_STEP {
            0 => {
                // Cell rebuild is a serial pipeline stage.
                if tid == 0 {
                    self.rebuild_cells(mem);
                }
            }
            1 => {
                for i in partition(self.particles, tid, threads) {
                    let rho = self.compute_density(mem, i);
                    self.density.set(mem, i, rho);
                }
            }
            _ => {
                let dt = 0.04f32;
                for i in partition(self.particles, tid, threads) {
                    let rho = self.density.get(mem, i);
                    // Pressure pushes particles from dense regions;
                    // gravity pulls down; walls reflect.
                    let pressure = 0.08 * (rho - REST_DENSITY);
                    let mut vx = self.vx.get(mem, i) - pressure * dt * 3.0;
                    let mut vy = self.vy.get(mem, i) - 0.8 * dt - pressure * dt;
                    let mut x = self.px.get(mem, i) + vx * dt;
                    let mut y = self.py.get(mem, i) + vy * dt;
                    if x < 0.0 {
                        x = -x;
                        vx *= -0.5;
                    }
                    if x > self.domain {
                        x = 2.0 * self.domain - x;
                        vx *= -0.5;
                    }
                    if y < 0.0 {
                        y = -y;
                        vy *= -0.5;
                    }
                    if y > self.domain {
                        y = 2.0 * self.domain - y;
                        vy *= -0.5;
                    }
                    mem.think(24);
                    self.vx.set(mem, i, vx);
                    self.vy.set(mem, i, vy);
                    self.px.set(mem, i, x.clamp(0.0, self.domain));
                    self.py.set(mem, i, y.clamp(0.0, self.domain));
                }
            }
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.particles);
        for i in 0..self.particles {
            out.push(self.px.get(mem, i) as f64);
        }
        for i in 0..self.particles {
            out.push(self.py.get(mem, i) as f64);
        }
        out
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn particles_stay_in_domain() {
        let k = Fluidanimate::new(256, 3, 2);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 2);
        let out = k.output(&mut p.image);
        for v in out {
            assert!(v >= 0.0 && v <= k.domain as f64 + 1e-6, "particle escaped: {v}");
        }
    }

    #[test]
    fn densities_are_positive_after_density_phase() {
        let k = Fluidanimate::new(128, 1, 4);
        let mut p = prepare(&k);
        // Run rebuild + density phases only.
        crate::run_phase_range(&k, &mut p.image, 0..2, 1);
        let mem = &mut p.image;
        for i in 0..128 {
            // Every particle at least sees itself (weight(0) = 1).
            assert!(k.density.get(mem, i) >= 1.0 - 1e-6);
        }
    }

    #[test]
    fn cell_lists_cover_all_particles() {
        let k = Fluidanimate::new(200, 1, 7);
        let mut p = prepare(&k);
        k.rebuild_cells(&mut p.image);
        let mem = &mut p.image;
        let cells = k.cells_per_side * k.cells_per_side;
        let total = k.cell_start.get(mem, cells) as usize;
        assert_eq!(total, 200);
        let mut seen = [false; 200];
        for idx in 0..200 {
            let particle = k.cell_particles.get(mem, idx) as usize;
            assert!(!seen[particle]);
            seen[particle] = true;
        }
    }
}
