//! PARSEC `swaptions`: Monte-Carlo swaption pricing.
//!
//! Prices a portfolio of European swaptions by simulating short-rate
//! paths (a one-factor Hull-White-style model driven by precomputed
//! Gaussian shocks) and averaging discounted payoffs. Only the small
//! swaption-parameter arrays are annotated approximate — the large
//! random-shock buffers are precise intermediates — matching swaptions'
//! tiny approximate LLC footprint (Table 2: 1.5%).

use crate::kernel::partition;
use crate::metrics::mean_relative_error;
use crate::{ArrayF32, ArrayF64, Kernel};
use dg_mem::{AddressSpace, AnnotationTable, Memory, MemoryImage};
use dg_rand::SplitMix64;

/// Timesteps per simulated path.
const STEPS: usize = 16;

/// Floats per swaption record: (strike, rate0, vol, tenor).
const FIELDS: usize = 4;

/// The swaptions kernel.
#[derive(Debug)]
pub struct Swaptions {
    swaptions: usize,
    paths: usize,
    seed: u64,
    /// Approximate inputs, AoS layout: records of
    /// (strike, rate0, vol, tenor), four records per 64 B block.
    params: ArrayF32,
    /// Precise Gaussian shocks, `paths × STEPS`.
    shocks: ArrayF32,
    /// Output prices.
    price: ArrayF64,
}

impl Swaptions {
    /// `swaptions` instruments priced over `paths` Monte-Carlo paths.
    pub fn new(swaptions: usize, paths: usize, seed: u64) -> Self {
        assert!(swaptions > 0 && paths > 0);
        let mut space = AddressSpace::new();
        let alloc_f = |space: &mut AddressSpace, n: usize| ArrayF32::new(space.alloc_blocks(4 * n as u64), n);
        Swaptions {
            swaptions,
            paths,
            seed,
            params: alloc_f(&mut space, swaptions * FIELDS),
            shocks: alloc_f(&mut space, paths * STEPS),
            price: ArrayF64::new(space.alloc_blocks(8 * swaptions as u64), swaptions),
        }
    }

    fn field(&self, mem: &mut dyn Memory, s: usize, f: usize) -> f32 {
        self.params.get(mem, s * FIELDS + f)
    }

    fn set_field(&self, mem: &mut dyn Memory, s: usize, f: usize, v: f32) {
        self.params.set(mem, s * FIELDS + f, v)
    }

    /// Price one swaption by path simulation.
    fn price_one(&self, mem: &mut dyn Memory, s: usize) -> f64 {
        let strike = self.field(mem, s, 0);
        let r0 = self.field(mem, s, 1);
        let vol = self.field(mem, s, 2);
        let tenor = self.field(mem, s, 3).max(0.5);
        let dt = tenor / STEPS as f32;
        let mut sum = 0.0f64;
        for p in 0..self.paths {
            // Simulate the short rate with mean reversion toward r0.
            let mut r = r0;
            let mut discount = 0.0f32;
            for t in 0..STEPS {
                let z = self.shocks.get(mem, p * STEPS + t);
                r += 0.1 * (r0 - r) * dt + vol * z * dt.sqrt();
                r = r.max(0.0);
                discount += r * dt;
                mem.think(10);
            }
            // Payer swaption payoff at expiry: the positive part of the
            // terminal rate over the strike, annuity-weighted.
            let payoff = (r - strike).max(0.0) * tenor;
            sum += ((-discount).exp() * payoff) as f64;
        }
        sum / self.paths as f64
    }
}

impl Kernel for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable {
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x54a9);
        // Interest-rate parameters share a handful of market-quoted
        // values (the exact redundancy noted in §2).
        let rates = [0.02f32, 0.025, 0.03];
        // Four records per 64 B block; repeat earlier block-aligned runs
        // (the same instruments reappear across books).
        const CHUNK: usize = 4;
        let mut s0 = 0;
        while s0 < self.swaptions {
            let end = (s0 + CHUNK).min(self.swaptions);
            // Explicit nonempty-range guard: the first chunk has no
            // predecessor to copy, and `gen_range(0..0)` panics.
            let prior_chunks = s0 / CHUNK;
            if prior_chunks > 0 && rng.gen_bool(0.5) {
                let src = rng.gen_range(0..prior_chunks) * CHUNK;
                // Half exact repeats, half re-marked records with noise
                // below the 14-bit map bin (6/2^14 ≈ 3.7e-4).
                let noise: f32 =
                    if rng.gen_bool(0.5) { 0.0 } else { rng.gen_range(1.0e-6..5.0e-5) };
                for k in 0..end - s0 {
                    for f in 0..FIELDS {
                        let v = self.field(mem, src + k, f);
                        self.set_field(mem, s0 + k, f, v + noise);
                    }
                }
            } else {
                for s in s0..end {
                    self.set_field(mem, s, 0, rng.gen_range(0.015..0.045));
                    self.set_field(mem, s, 1, rates[rng.gen_range(0..rates.len())]);
                    self.set_field(mem, s, 2, rng.gen_range(0.005..0.02));
                    self.set_field(mem, s, 3, rng.gen_range(1.0..5.0));
                }
            }
            s0 = end;
        }
        // Box-Muller Gaussian shocks (precise data).
        let mut i = 0;
        while i < self.paths * STEPS {
            let u1: f32 = rng.gen_range(1e-6..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            self.shocks.set(mem, i, mag * (2.0 * std::f32::consts::PI * u2).cos());
            i += 1;
            if i < self.paths * STEPS {
                self.shocks.set(mem, i, mag * (2.0 * std::f32::consts::PI * u2).sin());
                i += 1;
            }
        }
        let mut t = AnnotationTable::new();
        // One conservative range covers every field of the record —
        // exactly the single-range-per-type simplification the paper
        // describes (§4.1) and blames for swaptions' sensitivity (§5.2:
        // rates are much smaller than tenors, so they are "overly
        // susceptible to approximate similarity").
        t.add(self.params.annotation(0.0, 6.0));
        t
    }

    fn phases(&self) -> usize {
        1
    }

    fn run_phase(&self, mem: &mut dyn Memory, _phase: usize, tid: usize, threads: usize) {
        for s in partition(self.swaptions, tid, threads) {
            let p = self.price_one(mem, s);
            self.price.set(mem, s, p);
        }
    }

    fn output(&self, mem: &mut dyn Memory) -> Vec<f64> {
        (0..self.swaptions).map(|s| self.price.get(mem, s)).collect()
    }

    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_to_completion};

    #[test]
    fn prices_are_nonnegative_and_small() {
        let k = Swaptions::new(16, 64, 3);
        let mut p = prepare(&k);
        run_to_completion(&k, &mut p.image, 2);
        for v in k.output(&mut p.image) {
            assert!(v >= 0.0, "negative swaption price {v}");
            assert!(v < 1.0, "implausible swaption price {v}");
        }
    }

    #[test]
    fn deeper_in_the_money_is_worth_more() {
        // Manually craft two swaptions identical except for the strike.
        let k = Swaptions::new(2, 256, 5);
        let mut p = prepare(&k);
        let mem = &mut p.image;
        for s in 0..2 {
            k.set_field(mem, s, 1, 0.03);
            k.set_field(mem, s, 2, 0.01);
            k.set_field(mem, s, 3, 3.0);
        }
        k.set_field(mem, 0, 0, 0.020); // deep in the money
        k.set_field(mem, 1, 0, 0.040); // out of the money
        run_to_completion(&k, &mut p.image, 1);
        let out = k.output(&mut p.image);
        assert!(out[0] > out[1], "lower strike must be worth more: {out:?}");
    }

    #[test]
    fn shocks_look_standard_normal() {
        let k = Swaptions::new(2, 512, 9);
        let mut p = prepare(&k);
        let mem = &mut p.image;
        let n = 512 * STEPS;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for i in 0..n {
            let z = k.shocks.get(mem, i) as f64;
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "shock mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "shock variance {var}");
    }
}
