//! Streaming a kernel's execution-driven access sequence.
//!
//! [`KernelSource`] adapts a workload kernel to the bounded-memory
//! [`TraceStream`] interface: it *executes* the kernel functionally
//! (against a precise [`dg_mem::MemoryImage`]) and delivers the access
//! records in the canonical system-runner order — phase-major, workers
//! `tid = 0..threads` back-to-back within a phase, worker `tid` on core
//! `tid % cores` — in chunks of at most [`STREAM_CHUNK`] records.
//!
//! That order is exactly the order `dg-system`'s `run_phases` issues
//! accesses in, so a global access index in this stream addresses the
//! same access in a sampled hybrid run: the profiling pass and the
//! sampled executor agree on what "interval `[s, e)`" means.
//!
//! Unlike [`dg_mem::RecordingMemory`], which accumulates the whole
//! trace in a `Vec`, the recorder here holds at most one chunk of
//! records — streaming a paper-scale kernel costs one chunk of memory,
//! not gigabytes.

use crate::{prepare, Kernel};
use dg_mem::stream::{StreamChunk, TraceStream, STREAM_CHUNK};
use dg_mem::{Access, AccessKind, Addr, AnnotationTable, Memory, MemoryImage};

/// A [`TraceStream`] over a kernel's functional execution.
#[derive(Debug)]
pub struct KernelSource<'k> {
    kernel: &'k dyn Kernel,
    threads: usize,
    cores: usize,
}

impl<'k> KernelSource<'k> {
    /// Stream `kernel` run by `threads` workers on `cores` cores (the
    /// runner's `tid % cores` placement).
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `cores` is zero.
    pub fn new(kernel: &'k dyn Kernel, threads: usize, cores: usize) -> Self {
        assert!(threads > 0 && cores > 0);
        KernelSource { kernel, threads, cores }
    }
}

impl TraceStream for KernelSource<'_> {
    fn cores(&self) -> usize {
        self.cores
    }

    fn visit(&mut self, start: u64, end: u64, sink: &mut dyn FnMut(u64, StreamChunk<'_>)) {
        let mut p = prepare(self.kernel);
        let mut rec = StreamRecorder {
            image: &mut p.image,
            annots: &p.annotations,
            core: 0,
            next: 0,
            start,
            end,
            base: 0,
            pending_think: 0,
            buf: Vec::with_capacity(STREAM_CHUNK),
            sink,
        };
        'run: for phase in 0..self.kernel.phases() {
            for tid in 0..self.threads {
                if rec.next >= end {
                    // Everything past the window is irrelevant to this
                    // visit; the next visit re-prepares from scratch.
                    break 'run;
                }
                rec.core = tid % self.cores;
                self.kernel.run_phase(&mut rec, phase, tid, self.threads);
            }
        }
        rec.flush();
    }
}

/// Bounded-memory recording [`Memory`]: forwards every access to the
/// functional image and streams the records falling in the index
/// window out through the sink, one chunk at a time.
struct StreamRecorder<'a, 's> {
    image: &'a mut MemoryImage,
    annots: &'a AnnotationTable,
    core: usize,
    next: u64,
    start: u64,
    end: u64,
    base: u64,
    pending_think: u32,
    buf: Vec<(usize, Access)>,
    sink: &'s mut (dyn for<'c> FnMut(u64, StreamChunk<'c>) + 's),
}

impl StreamRecorder<'_, '_> {
    fn record(&mut self, addr: Addr, kind: AccessKind, size: usize, data: Option<[u8; 8]>) {
        let idx = self.next;
        self.next += 1;
        let think = std::mem::take(&mut self.pending_think);
        if idx < self.start || idx >= self.end {
            return;
        }
        if self.buf.is_empty() {
            self.base = idx;
        }
        self.buf.push((
            self.core,
            Access {
                addr,
                kind,
                size: size as u8,
                approx: self.annots.is_approx(addr),
                think,
                data,
            },
        ));
        if self.buf.len() == STREAM_CHUNK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            (self.sink)(self.base, &self.buf);
            self.buf.clear();
        }
    }
}

impl Memory for StreamRecorder<'_, '_> {
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.record(addr, AccessKind::Load, buf.len(), None);
        self.image.load_bytes(addr, buf);
    }

    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let mut payload = [0u8; 8];
        payload[..bytes.len()].copy_from_slice(bytes);
        self.record(addr, AccessKind::Store, bytes.len(), Some(payload));
        self.image.store_bytes(addr, bytes);
    }

    fn think(&mut self, ops: u32) {
        self.pending_think = self.pending_think.saturating_add(ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Blackscholes;
    use dg_mem::RecordingMemory;

    /// The reference: record the same phase-major order with the
    /// unbounded recorder.
    fn reference(kernel: &dyn Kernel, threads: usize, cores: usize) -> Vec<(usize, Access)> {
        let p = prepare(kernel);
        let mut image = p.image;
        let mut rec = RecordingMemory::new(&mut image, &p.annotations);
        let mut out = Vec::new();
        for phase in 0..kernel.phases() {
            for tid in 0..threads {
                let before = rec.recorded();
                kernel.run_phase(&mut rec, phase, tid, threads);
                let n = rec.recorded() - before;
                out.extend(std::iter::repeat(tid % cores).take(n));
            }
        }
        rec.into_accesses().into_iter().zip(out).map(|(a, c)| (c, a)).collect()
    }

    #[test]
    fn stream_matches_the_unbounded_recorder() {
        let kernel = Blackscholes::new(128, 11);
        let expected = reference(&kernel, 4, 4);
        let mut src = KernelSource::new(&kernel, 4, 4);
        assert_eq!(src.total_accesses(), expected.len() as u64);
        let mut seen = Vec::new();
        src.visit(0, u64::MAX, &mut |base, chunk| {
            for (off, rec) in chunk.iter().enumerate() {
                seen.push((base + off as u64, *rec));
            }
        });
        assert_eq!(seen.len(), expected.len());
        for (idx, rec) in &seen {
            assert_eq!(rec, &expected[*idx as usize], "index {idx}");
        }
    }

    #[test]
    fn windows_are_position_stable() {
        let kernel = Blackscholes::new(128, 11);
        let mut src = KernelSource::new(&kernel, 4, 4);
        let n = src.total_accesses();
        assert!(n > 1000);
        let expected = reference(&kernel, 4, 4);
        let (s, e) = (n / 3, n / 3 + 500);
        let mut seen = Vec::new();
        src.visit(s, e, &mut |base, chunk| {
            for (off, rec) in chunk.iter().enumerate() {
                seen.push((base + off as u64, *rec));
            }
        });
        assert_eq!(seen.len(), 500);
        for (idx, rec) in &seen {
            assert!((s..e).contains(idx));
            assert_eq!(rec, &expected[*idx as usize]);
        }
    }
}
