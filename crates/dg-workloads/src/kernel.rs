//! The kernel abstraction all nine benchmarks implement.

use dg_mem::{AnnotationTable, Memory, MemoryImage};
use std::fmt::Debug;

/// One benchmark kernel.
///
/// Execution is organised as a sequence of *phases* (barrier-separated
/// steps, e.g. one k-means assign or update step). Within a phase, work
/// is partitioned across `threads` data-parallel workers; the driver
/// runs workers of the same phase back-to-back, which is equivalent to
/// a barrier-synchronised parallel execution because workers of one
/// phase touch disjoint output ranges.
///
/// Kernels are plain data (`Send + Sync`), so independent evaluations
/// can run on separate OS threads in the bench harness.
pub trait Kernel: Debug + Send + Sync {
    /// The benchmark's name (matches the paper's Table 2).
    fn name(&self) -> &'static str;

    /// Populate `mem` with the initial data set and return the
    /// programmer annotations. Deterministic in the kernel's seed.
    fn setup(&self, mem: &mut MemoryImage) -> AnnotationTable;

    /// Total number of barrier-separated phases.
    fn phases(&self) -> usize;

    /// Run worker `tid` of `threads` for `phase`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `phase >= self.phases()` or
    /// `tid >= threads`.
    fn run_phase(&self, mem: &mut dyn Memory, phase: usize, tid: usize, threads: usize);

    /// Read the application's final output from memory.
    fn output(&self, mem: &mut dyn Memory) -> Vec<f64>;

    /// The benchmark's output-error metric, in `[0, 1]`: compares an
    /// approximate run's output against the precise run's.
    fn error_metric(&self, precise: &[f64], approx: &[f64]) -> f64;
}

/// Run every phase of `kernel` to completion with `threads` workers.
pub fn run_to_completion(kernel: &dyn Kernel, mem: &mut dyn Memory, threads: usize) {
    run_phase_range(kernel, mem, 0..kernel.phases(), threads);
}

/// Run a contiguous range of phases (useful for warm-up splits).
pub fn run_phase_range(
    kernel: &dyn Kernel,
    mem: &mut dyn Memory,
    phases: std::ops::Range<usize>,
    threads: usize,
) {
    assert!(threads > 0, "at least one thread required");
    for phase in phases {
        for tid in 0..threads {
            kernel.run_phase(mem, phase, tid, threads);
        }
    }
}

/// Evenly partition `n` items among `threads` workers; returns worker
/// `tid`'s half-open range.
pub fn partition(n: usize, tid: usize, threads: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(threads);
    let start = (tid * per).min(n);
    let end = ((tid + 1) * per).min(n);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_once() {
        for n in [0usize, 1, 7, 64, 100] {
            for threads in [1usize, 2, 3, 4, 7] {
                let mut seen = vec![false; n];
                for tid in 0..threads {
                    for i in partition(n, tid, threads) {
                        assert!(!seen[i], "item {i} assigned twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        let sizes: Vec<usize> = (0..4).map(|t| partition(100, t, 4).len()).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25]);
    }
}
