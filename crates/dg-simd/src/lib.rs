//! Runtime-dispatched SIMD kernels for the simulator's hot loops, with
//! a scalar reference implementation that every vector lane must match
//! **bit for bit**.
//!
//! Three loop families dominate the per-access cost after the PR 3
//! fast-path work, and all three are data-parallel over fixed-size
//! data:
//!
//! 1. **Map generation** (paper §3.7): decode a 64-byte block as typed
//!    elements, clamp each into the annotated `[lo, hi]` range, and
//!    reduce min/max/sum. [`decode_clamp_on`] vectorizes the decode +
//!    clamp into an `[f64; 64]` buffer and [`min_max_on`] the min/max
//!    reduction. The **sum is never vectorized**: f64 addition is not
//!    associative, so lane-parallel partial sums could land an average
//!    in a different quantization bin. [`sum_seq`] folds the buffer in
//!    element order on every lane.
//! 2. **Key-lane scans**: the dense `u64` scan keys of
//!    `TagArray::find_keyed` and the way scans of the conventional
//!    caches. [`match_mask_on`] compares a whole set's keys at once and
//!    returns a bitmask; callers walk it in ascending way order, so hit
//!    order (and therefore every downstream decision) is unchanged.
//! 3. **64-byte block compare/copy** on the fill and writeback paths:
//!    [`eq64_on`] / [`copy64_on`].
//!
//! # Bit-identity contract
//!
//! The scalar lane *is* the semantics; SSE2/AVX2 are implementations of
//! it. Equality compares and copies are trivially exact. For the
//! floating-point kernels:
//!
//! * clamp uses `max_pd(lo, min_pd(hi, v))`. Both instructions return
//!   the **second** operand on a NaN or a `±0.0` tie, so the result is
//!   bitwise `v.clamp(lo, hi)` in every case, including NaN
//!   passthrough and signed zeros.
//! * min/max accumulation uses `min_pd(v, acc)` / `max_pd(v, acc)`:
//!   a NaN element leaves the accumulator untouched, exactly like the
//!   scalar `f64::min`/`f64::max` fold seeded with `±∞`. The only
//!   representational freedom left is *which* zero (`+0.0` vs `-0.0`)
//!   wins a tie between equal zeros; the quantizer downstream cannot
//!   distinguish them (`-0.0 == 0.0`, and `x - (-0.0)` and `x - 0.0`
//!   are bitwise equal for every `x`), and the property tests pin that
//!   all lanes produce bit-identical *maps*.
//!
//! # Dispatch
//!
//! [`lane()`] picks the widest lane the CPU supports, once, honouring
//! the `DG_SIMD` environment variable (`off`/`scalar`, `sse2`, `avx2`,
//! or `on`/`auto`). Every kernel also has a lane-explicit `*_on`
//! variant so differential tests can compare lanes in-process without
//! touching global state. Requesting an unavailable lane (or any lane
//! on a non-x86_64 host) falls back to scalar — results are identical
//! by contract, so the fallback is silent.

use std::sync::OnceLock;

/// How a 64-byte block's bytes decode into elements. Mirrors
/// `dg_mem::ElemType` without depending on it (this crate sits below
/// `dg-mem` in the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemKind {
    /// 64 unsigned bytes.
    U8,
    /// 16 little-endian `i32`s.
    I32,
    /// 16 little-endian `f32`s.
    F32,
    /// 8 little-endian `f64`s.
    F64,
}

impl ElemKind {
    /// Elements per 64-byte block.
    #[inline]
    pub const fn count(self) -> usize {
        match self {
            ElemKind::U8 => 64,
            ElemKind::I32 | ElemKind::F32 => 16,
            ElemKind::F64 => 8,
        }
    }
}

/// An implementation lane. `Scalar` is the reference; the vector lanes
/// must produce bit-identical results (see the crate docs for the
/// contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Plain Rust loops — the reference implementation.
    Scalar,
    /// 128-bit `core::arch::x86_64` kernels (baseline on x86_64).
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
}

impl Lane {
    /// All lanes, narrowest first.
    pub const ALL: [Lane; 3] = [Lane::Scalar, Lane::Sse2, Lane::Avx2];

    /// Stable lower-case name (used in exported artifact metadata).
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            Lane::Scalar => "scalar",
            Lane::Sse2 => "sse2",
            Lane::Avx2 => "avx2",
        }
    }

    /// Whether this host can execute the lane.
    #[inline]
    pub fn available(self) -> bool {
        match self {
            Lane::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Lane::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Lane::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The process-wide lane: the widest available one, overridable via
/// `DG_SIMD` (`off`/`scalar`/`0`, `sse2`, `avx2`, `on`/`auto`/`1`).
/// Resolved once and cached; an unrecognised value warns on stderr and
/// behaves like `auto` (all lanes are bit-identical, so any choice is
/// safe).
pub fn lane() -> Lane {
    static LANE: OnceLock<Lane> = OnceLock::new();
    *LANE.get_or_init(|| select_lane(std::env::var("DG_SIMD").ok().as_deref()))
}

/// Pure lane-selection policy behind [`lane()`], separated for tests.
fn select_lane(var: Option<&str>) -> Lane {
    let best = if Lane::Avx2.available() {
        Lane::Avx2
    } else if Lane::Sse2.available() {
        Lane::Sse2
    } else {
        Lane::Scalar
    };
    let Some(raw) = var else { return best };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "on" | "auto" | "1" => best,
        "off" | "scalar" | "0" => Lane::Scalar,
        "sse2" => {
            if Lane::Sse2.available() {
                Lane::Sse2
            } else {
                Lane::Scalar
            }
        }
        "avx2" => {
            if Lane::Avx2.available() {
                Lane::Avx2
            } else {
                eprintln!("dg-simd: DG_SIMD=avx2 requested but AVX2 is unavailable; using {}", best.name());
                best
            }
        }
        other => {
            eprintln!("dg-simd: unrecognised DG_SIMD={other:?}; using {}", best.name());
            best
        }
    }
}

// ----------------------------------------------------------------------
// Kernel 1: decode + clamp a block into an f64 element buffer.
// ----------------------------------------------------------------------

/// Decode `bytes` as `kind` elements, clamp each into `[lo, hi]`, and
/// write them in element order into `out`. Returns the element count.
///
/// Every lane produces bitwise-identical buffers (see the crate docs).
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is NaN (the same condition under
/// which the scalar `f64::clamp` panics).
#[inline]
pub fn decode_clamp_on(
    lane: Lane,
    kind: ElemKind,
    bytes: &[u8; 64],
    lo: f64,
    hi: f64,
    out: &mut [f64; 64],
) -> usize {
    assert!(lo <= hi, "decode_clamp bounds must satisfy lo <= hi and be non-NaN");
    #[cfg(target_arch = "x86_64")]
    match lane {
        Lane::Avx2 if Lane::Avx2.available() => {
            // SAFETY: AVX2 support was just verified on this CPU.
            return unsafe { x86::decode_clamp_avx2(kind, bytes, lo, hi, out) };
        }
        Lane::Sse2 if Lane::Sse2.available() => {
            // SAFETY: SSE2 support was just verified on this CPU.
            return unsafe { x86::decode_clamp_sse2(kind, bytes, lo, hi, out) };
        }
        _ => {}
    }
    let _ = lane;
    decode_clamp_scalar(kind, bytes, lo, hi, out)
}

/// [`decode_clamp_on`] with the process-wide [`lane()`].
#[inline]
pub fn decode_clamp(kind: ElemKind, bytes: &[u8; 64], lo: f64, hi: f64, out: &mut [f64; 64]) -> usize {
    decode_clamp_on(lane(), kind, bytes, lo, hi, out)
}

/// The reference decode + clamp: exactly `elem.clamp(lo, hi)` per
/// element in element order.
fn decode_clamp_scalar(kind: ElemKind, bytes: &[u8; 64], lo: f64, hi: f64, out: &mut [f64; 64]) -> usize {
    match kind {
        ElemKind::U8 => {
            for (o, &b) in out.iter_mut().zip(bytes.iter()) {
                *o = (b as f64).clamp(lo, hi);
            }
        }
        ElemKind::I32 => {
            for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                *o = (i32::from_le_bytes(c.try_into().unwrap()) as f64).clamp(lo, hi);
            }
        }
        ElemKind::F32 => {
            for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                *o = (f32::from_le_bytes(c.try_into().unwrap()) as f64).clamp(lo, hi);
            }
        }
        ElemKind::F64 => {
            for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
                *o = f64::from_le_bytes(c.try_into().unwrap()).clamp(lo, hi);
            }
        }
    }
    kind.count()
}

// ----------------------------------------------------------------------
// Kernel 2: NaN-skipping min/max reduction over an f64 slice.
// ----------------------------------------------------------------------

/// `(min, max)` over `vals`, skipping NaNs, seeded `(+∞, -∞)` — the
/// same fold as `acc.min(v)` / `acc.max(v)` in element order. An
/// all-NaN (or empty) slice returns the seeds.
#[inline]
pub fn min_max_on(lane: Lane, vals: &[f64]) -> (f64, f64) {
    #[cfg(target_arch = "x86_64")]
    match lane {
        Lane::Avx2 if Lane::Avx2.available() => {
            // SAFETY: AVX2 support was just verified on this CPU.
            return unsafe { x86::min_max_avx2(vals) };
        }
        Lane::Sse2 if Lane::Sse2.available() => {
            // SAFETY: SSE2 support was just verified on this CPU.
            return unsafe { x86::min_max_sse2(vals) };
        }
        _ => {}
    }
    let _ = lane;
    min_max_scalar(vals)
}

/// [`min_max_on`] with the process-wide [`lane()`].
#[inline]
pub fn min_max(vals: &[f64]) -> (f64, f64) {
    min_max_on(lane(), vals)
}

fn min_max_scalar(vals: &[f64]) -> (f64, f64) {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in vals {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

/// Sum `vals` strictly in element order. Deliberately **not**
/// vectorized on any lane: f64 addition is non-associative and the sum
/// feeds a quantizer, so reassociation could change observable output.
#[inline]
pub fn sum_seq(vals: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &v in vals {
        sum += v;
    }
    sum
}

// ----------------------------------------------------------------------
// Kernel 3: dense u64 key scan.
// ----------------------------------------------------------------------

/// Bitmask of positions in `keys` equal to `key` (bit `i` set ⇔
/// `keys[i] == key`). Callers consume bits in ascending order, which
/// reproduces the first-match order of a linear scan exactly.
///
/// # Panics
///
/// Debug-asserts `keys.len() <= 64` (a cache set's way count).
#[inline]
pub fn match_mask_on(lane: Lane, keys: &[u64], key: u64) -> u64 {
    debug_assert!(keys.len() <= 64, "match_mask scans one set (≤ 64 ways)");
    // Short scans (the L1/L2 way counts) stay inline: the compare loop
    // is branch-free and auto-vectorizes under the baseline target
    // features, while reaching a `#[target_feature]` kernel costs a
    // non-inlinable call plus the lane test — more than the scan
    // itself at 8 ways. The mask is identical either way.
    if keys.len() <= 8 {
        return match_mask_scalar(keys, key);
    }
    #[cfg(target_arch = "x86_64")]
    match lane {
        Lane::Avx2 if Lane::Avx2.available() => {
            // SAFETY: AVX2 support was just verified on this CPU.
            return unsafe { x86::match_mask_avx2(keys, key) };
        }
        Lane::Sse2 if Lane::Sse2.available() => {
            // SAFETY: SSE2 support was just verified on this CPU.
            return unsafe { x86::match_mask_sse2(keys, key) };
        }
        _ => {}
    }
    let _ = lane;
    match_mask_scalar(keys, key)
}

/// [`match_mask_on`] with the process-wide [`lane()`].
#[inline]
pub fn match_mask(keys: &[u64], key: u64) -> u64 {
    match_mask_on(lane(), keys, key)
}

#[inline]
fn match_mask_scalar(keys: &[u64], key: u64) -> u64 {
    let mut mask = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        // Branch-free accumulation: `(k == key) as u64` compiles to a
        // flag set, so the loop vectorizes cleanly.
        mask |= ((k == key) as u64) << i;
    }
    mask
}

// ----------------------------------------------------------------------
// Kernel 4: 64-byte block compare / copy.
// ----------------------------------------------------------------------

/// Whether two 64-byte blocks are byte-identical.
#[inline]
pub fn eq64_on(lane: Lane, a: &[u8; 64], b: &[u8; 64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    match lane {
        Lane::Avx2 if Lane::Avx2.available() => {
            // SAFETY: AVX2 support was just verified on this CPU.
            return unsafe { x86::eq64_avx2(a, b) };
        }
        Lane::Sse2 if Lane::Sse2.available() => {
            // SAFETY: SSE2 support was just verified on this CPU.
            return unsafe { x86::eq64_sse2(a, b) };
        }
        _ => {}
    }
    let _ = lane;
    eq64_inline(a, b)
}

/// [`eq64_on`], inlined at the call site. A 64-byte compare is too
/// small to amortize a lane test plus a non-inlinable
/// `#[target_feature]` call (and `a == b` on byte arrays lowers to a
/// libc `bcmp` call): eight branch-free u64 word compares vectorize
/// under the baseline target features and stay in the caller.
#[inline]
pub fn eq64(a: &[u8; 64], b: &[u8; 64]) -> bool {
    eq64_inline(a, b)
}

#[inline]
fn eq64_inline(a: &[u8; 64], b: &[u8; 64]) -> bool {
    let mut diff = 0u64;
    for i in 0..8 {
        let x = u64::from_le_bytes(a[i * 8..i * 8 + 8].try_into().unwrap());
        let y = u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
        diff |= x ^ y;
    }
    diff == 0
}

/// Copy one 64-byte block.
#[inline]
pub fn copy64_on(lane: Lane, dst: &mut [u8; 64], src: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if matches!(lane, Lane::Avx2) && Lane::Avx2.available() {
        // SAFETY: AVX2 support was just verified on this CPU.
        unsafe { x86::copy64_avx2(dst, src) };
        return;
    }
    let _ = lane;
    *dst = *src;
}

/// [`copy64_on`], inlined at the call site: a fixed 64-byte move
/// lowers to four 128-bit (or two 256-bit, under wider target
/// features) register moves inline — already the vector ideal, with
/// no lane test or call to amortize.
#[inline]
pub fn copy64(dst: &mut [u8; 64], src: &[u8; 64]) {
    *dst = *src;
}

// ----------------------------------------------------------------------
// x86_64 kernels.
// ----------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::ElemKind;
    use core::arch::x86_64::*;

    // `min_pd(a, b)` / `max_pd(a, b)` return `b` when the comparison is
    // false — including NaN operands and `±0.0` ties. The clamp below
    // therefore returns `v` itself (bitwise) whenever `v` is in range
    // or NaN, `hi` when `v > hi`, and `lo` when `v < lo`: exactly
    // `f64::clamp`. The accumulating min/max pass `v` first so a NaN
    // element leaves the accumulator (second operand) untouched.

    // ---------------- AVX2 ----------------

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn clamp4(v: __m256d, lo: __m256d, hi: __m256d) -> __m256d {
        _mm256_max_pd(lo, _mm256_min_pd(hi, v))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_clamp_avx2(
        kind: ElemKind,
        bytes: &[u8; 64],
        lo: f64,
        hi: f64,
        out: &mut [f64; 64],
    ) -> usize {
        let lo_v = _mm256_set1_pd(lo);
        let hi_v = _mm256_set1_pd(hi);
        let src = bytes.as_ptr();
        let dst = out.as_mut_ptr();
        match kind {
            ElemKind::F64 => {
                for i in 0..2 {
                    let v = _mm256_loadu_pd(src.add(i * 32) as *const f64);
                    _mm256_storeu_pd(dst.add(i * 4), clamp4(v, lo_v, hi_v));
                }
            }
            ElemKind::F32 => {
                for i in 0..4 {
                    let v4 = _mm_loadu_ps(src.add(i * 16) as *const f32);
                    let d = _mm256_cvtps_pd(v4); // f32→f64 widening is exact
                    _mm256_storeu_pd(dst.add(i * 4), clamp4(d, lo_v, hi_v));
                }
            }
            ElemKind::I32 => {
                for i in 0..4 {
                    let v = _mm_loadu_si128(src.add(i * 16) as *const __m128i);
                    let d = _mm256_cvtepi32_pd(v); // i32→f64 is exact
                    _mm256_storeu_pd(dst.add(i * 4), clamp4(d, lo_v, hi_v));
                }
            }
            ElemKind::U8 => {
                for i in 0..8 {
                    let v8 = _mm_loadl_epi64(src.add(i * 8) as *const __m128i);
                    let w = _mm256_cvtepu8_epi32(v8); // 8 bytes → 8 i32
                    let d0 = _mm256_cvtepi32_pd(_mm256_castsi256_si128(w));
                    let d1 = _mm256_cvtepi32_pd(_mm256_extracti128_si256::<1>(w));
                    _mm256_storeu_pd(dst.add(i * 8), clamp4(d0, lo_v, hi_v));
                    _mm256_storeu_pd(dst.add(i * 8 + 4), clamp4(d1, lo_v, hi_v));
                }
            }
        }
        kind.count()
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_max_avx2(vals: &[f64]) -> (f64, f64) {
        let mut vmin = _mm256_set1_pd(f64::INFINITY);
        let mut vmax = _mm256_set1_pd(f64::NEG_INFINITY);
        let chunks = vals.len() / 4;
        for i in 0..chunks {
            let v = _mm256_loadu_pd(vals.as_ptr().add(i * 4));
            vmin = _mm256_min_pd(v, vmin); // NaN v keeps the accumulator
            vmax = _mm256_max_pd(v, vmax);
        }
        let mut mn = [0f64; 4];
        let mut mx = [0f64; 4];
        _mm256_storeu_pd(mn.as_mut_ptr(), vmin);
        _mm256_storeu_pd(mx.as_mut_ptr(), vmax);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for j in 0..4 {
            // Lane accumulators are never NaN (seeded ±∞, NaNs skipped).
            if mn[j] < min {
                min = mn[j];
            }
            if mx[j] > max {
                max = mx[j];
            }
        }
        for &v in &vals[chunks * 4..] {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        (min, max)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn match_mask_avx2(keys: &[u64], key: u64) -> u64 {
        let needle = _mm256_set1_epi64x(key as i64);
        let mut mask = 0u64;
        let chunks = keys.len() / 4;
        for i in 0..chunks {
            let v = _mm256_loadu_si256(keys.as_ptr().add(i * 4) as *const __m256i);
            let eq = _mm256_cmpeq_epi64(v, needle);
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32 as u64;
            mask |= m << (i * 4);
        }
        for (j, &k) in keys[chunks * 4..].iter().enumerate() {
            if k == key {
                mask |= 1 << (chunks * 4 + j);
            }
        }
        mask
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn eq64_avx2(a: &[u8; 64], b: &[u8; 64]) -> bool {
        let a0 = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
        let a1 = _mm256_loadu_si256(a.as_ptr().add(32) as *const __m256i);
        let b0 = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
        let b1 = _mm256_loadu_si256(b.as_ptr().add(32) as *const __m256i);
        let eq = _mm256_and_si256(_mm256_cmpeq_epi8(a0, b0), _mm256_cmpeq_epi8(a1, b1));
        _mm256_movemask_epi8(eq) == -1
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn copy64_avx2(dst: &mut [u8; 64], src: &[u8; 64]) {
        let v0 = _mm256_loadu_si256(src.as_ptr() as *const __m256i);
        let v1 = _mm256_loadu_si256(src.as_ptr().add(32) as *const __m256i);
        _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, v0);
        _mm256_storeu_si256(dst.as_mut_ptr().add(32) as *mut __m256i, v1);
    }

    // ---------------- SSE2 ----------------

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn clamp2(v: __m128d, lo: __m128d, hi: __m128d) -> __m128d {
        _mm_max_pd(lo, _mm_min_pd(hi, v))
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn decode_clamp_sse2(
        kind: ElemKind,
        bytes: &[u8; 64],
        lo: f64,
        hi: f64,
        out: &mut [f64; 64],
    ) -> usize {
        let lo_v = _mm_set1_pd(lo);
        let hi_v = _mm_set1_pd(hi);
        let src = bytes.as_ptr();
        let dst = out.as_mut_ptr();
        match kind {
            ElemKind::F64 => {
                for i in 0..4 {
                    let v = _mm_loadu_pd(src.add(i * 16) as *const f64);
                    _mm_storeu_pd(dst.add(i * 2), clamp2(v, lo_v, hi_v));
                }
            }
            ElemKind::F32 => {
                for i in 0..4 {
                    let v4 = _mm_loadu_ps(src.add(i * 16) as *const f32);
                    let d0 = _mm_cvtps_pd(v4); // low two f32s, exact
                    let d1 = _mm_cvtps_pd(_mm_movehl_ps(v4, v4)); // high two
                    _mm_storeu_pd(dst.add(i * 4), clamp2(d0, lo_v, hi_v));
                    _mm_storeu_pd(dst.add(i * 4 + 2), clamp2(d1, lo_v, hi_v));
                }
            }
            ElemKind::I32 => {
                for i in 0..4 {
                    let v = _mm_loadu_si128(src.add(i * 16) as *const __m128i);
                    let d0 = _mm_cvtepi32_pd(v); // low two i32s, exact
                    let d1 = _mm_cvtepi32_pd(_mm_shuffle_epi32::<0x0E>(v)); // high two
                    _mm_storeu_pd(dst.add(i * 4), clamp2(d0, lo_v, hi_v));
                    _mm_storeu_pd(dst.add(i * 4 + 2), clamp2(d1, lo_v, hi_v));
                }
            }
            ElemKind::U8 => {
                let zero = _mm_setzero_si128();
                for i in 0..8 {
                    let v = _mm_loadl_epi64(src.add(i * 8) as *const __m128i);
                    let w16 = _mm_unpacklo_epi8(v, zero); // 8 × u16
                    let a = _mm_unpacklo_epi16(w16, zero); // bytes 0..4 as u32
                    let b = _mm_unpackhi_epi16(w16, zero); // bytes 4..8 as u32
                    for (half, w) in [a, b].into_iter().enumerate() {
                        let d0 = _mm_cvtepi32_pd(w);
                        let d1 = _mm_cvtepi32_pd(_mm_shuffle_epi32::<0x0E>(w));
                        let base = i * 8 + half * 4;
                        _mm_storeu_pd(dst.add(base), clamp2(d0, lo_v, hi_v));
                        _mm_storeu_pd(dst.add(base + 2), clamp2(d1, lo_v, hi_v));
                    }
                }
            }
        }
        kind.count()
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn min_max_sse2(vals: &[f64]) -> (f64, f64) {
        let mut vmin = _mm_set1_pd(f64::INFINITY);
        let mut vmax = _mm_set1_pd(f64::NEG_INFINITY);
        let chunks = vals.len() / 2;
        for i in 0..chunks {
            let v = _mm_loadu_pd(vals.as_ptr().add(i * 2));
            vmin = _mm_min_pd(v, vmin);
            vmax = _mm_max_pd(v, vmax);
        }
        let mut mn = [0f64; 2];
        let mut mx = [0f64; 2];
        _mm_storeu_pd(mn.as_mut_ptr(), vmin);
        _mm_storeu_pd(mx.as_mut_ptr(), vmax);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for j in 0..2 {
            if mn[j] < min {
                min = mn[j];
            }
            if mx[j] > max {
                max = mx[j];
            }
        }
        for &v in &vals[chunks * 2..] {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        (min, max)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn match_mask_sse2(keys: &[u64], key: u64) -> u64 {
        let needle = _mm_set1_epi64x(key as i64);
        let mut mask = 0u64;
        let chunks = keys.len() / 2;
        for i in 0..chunks {
            let v = _mm_loadu_si128(keys.as_ptr().add(i * 2) as *const __m128i);
            let eq32 = _mm_cmpeq_epi32(v, needle);
            // A 64-bit lane matches iff both of its 32-bit halves do.
            let eq = _mm_and_si128(eq32, _mm_shuffle_epi32::<0xB1>(eq32));
            let m = _mm_movemask_pd(_mm_castsi128_pd(eq)) as u32 as u64;
            mask |= m << (i * 2);
        }
        for (j, &k) in keys[chunks * 2..].iter().enumerate() {
            if k == key {
                mask |= 1 << (chunks * 2 + j);
            }
        }
        mask
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn eq64_sse2(a: &[u8; 64], b: &[u8; 64]) -> bool {
        let mut eq = _mm_set1_epi8(-1);
        for i in 0..4 {
            let av = _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i);
            let bv = _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i);
            eq = _mm_and_si128(eq, _mm_cmpeq_epi8(av, bv));
        }
        _mm_movemask_epi8(eq) == 0xFFFF
    }
}

// ----------------------------------------------------------------------
// Tests.
// ----------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator (SplitMix64 step) so the crate
    /// stays dependency-free.
    struct Gen(u64);
    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn bytes(&mut self) -> [u8; 64] {
            let mut b = [0u8; 64];
            for c in b.chunks_exact_mut(8) {
                c.copy_from_slice(&self.next().to_le_bytes());
            }
            b
        }
    }

    fn vector_lanes() -> Vec<Lane> {
        [Lane::Sse2, Lane::Avx2].into_iter().filter(|l| l.available()).collect()
    }

    #[test]
    fn lane_selection_policy() {
        assert_eq!(select_lane(Some("off")), Lane::Scalar);
        assert_eq!(select_lane(Some("scalar")), Lane::Scalar);
        assert_eq!(select_lane(Some("0")), Lane::Scalar);
        assert_eq!(select_lane(Some("OFF")), Lane::Scalar);
        let best = select_lane(None);
        assert_eq!(select_lane(Some("on")), best);
        assert_eq!(select_lane(Some("auto")), best);
        assert_eq!(select_lane(Some(" on ")), best);
        assert_eq!(select_lane(Some("definitely-not-a-lane")), best);
        if Lane::Sse2.available() {
            assert_eq!(select_lane(Some("sse2")), Lane::Sse2);
        }
        if Lane::Avx2.available() {
            assert_eq!(select_lane(Some("avx2")), Lane::Avx2);
        }
        assert!(Lane::Scalar.available());
        assert_eq!(Lane::Scalar.name(), "scalar");
        assert_eq!(Lane::Avx2.name(), "avx2");
    }

    /// The documented tie rule the vector min/max kernels rely on:
    /// `minpd`/`maxpd` return the second operand on equal-zero ties,
    /// while the scalar fold uses `f64::min`/`f64::max`. Both must
    /// agree *numerically*; bitwise agreement on the sign of a zero is
    /// not required (and the quantizer cannot observe it). This test
    /// pins the numeric agreement on mixed-zero inputs.
    #[test]
    fn mixed_zero_min_max_is_numerically_stable() {
        let vals = [0.0, -0.0, 0.0, -0.0, 0.0];
        for lane in Lane::ALL.into_iter().filter(|l| l.available()) {
            let (mn, mx) = min_max_on(lane, &vals);
            assert_eq!(mn, 0.0, "{lane:?}");
            assert_eq!(mx, 0.0, "{lane:?}");
        }
    }

    #[test]
    fn decode_clamp_lanes_match_scalar_bitwise() {
        let mut g = Gen(1);
        let kinds = [ElemKind::U8, ElemKind::I32, ElemKind::F32, ElemKind::F64];
        let bounds = [(0.0, 255.0), (-1000.0, 1000.0), (-0.5, 0.5), (0.0, 0.0), (-0.0, 100.0)];
        for _ in 0..200 {
            let bytes = g.bytes();
            for kind in kinds {
                for (lo, hi) in bounds {
                    let mut want = [0f64; 64];
                    let n = decode_clamp_on(Lane::Scalar, kind, &bytes, lo, hi, &mut want);
                    assert_eq!(n, kind.count());
                    for lane in vector_lanes() {
                        let mut got = [0f64; 64];
                        let m = decode_clamp_on(lane, kind, &bytes, lo, hi, &mut got);
                        assert_eq!(m, n);
                        for i in 0..n {
                            assert_eq!(
                                want[i].to_bits(),
                                got[i].to_bits(),
                                "lane {lane:?} kind {kind:?} elem {i}: {} vs {}",
                                want[i],
                                got[i]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn decode_clamp_handles_nan_inf_denormal_bit_patterns() {
        // Hand-built f64 blocks: NaN, ±∞, denormals, ±0.
        let specials: [f64; 8] = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // denormal
            -f64::MIN_POSITIVE / 4.0,
            -0.0,
            0.0,
            1.5e308,
        ];
        let mut bytes = [0u8; 64];
        for (i, v) in specials.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        for (lo, hi) in [(-1.0, 1.0), (0.0, 10.0), (f64::MIN, f64::MAX)] {
            let mut want = [0f64; 64];
            let n = decode_clamp_on(Lane::Scalar, ElemKind::F64, &bytes, lo, hi, &mut want);
            for lane in vector_lanes() {
                let mut got = [0f64; 64];
                decode_clamp_on(lane, ElemKind::F64, &bytes, lo, hi, &mut got);
                for i in 0..n {
                    assert_eq!(want[i].to_bits(), got[i].to_bits(), "lane {lane:?} elem {i}");
                }
            }
            // NaN passes through clamp; infinities clamp to the bounds.
            assert!(want[0].is_nan());
            assert_eq!(want[1], hi);
            assert_eq!(want[2], lo);
        }
        // f32 NaN/∞/denormal bit patterns too.
        let f32s: [f32; 4] = [f32::NAN, f32::INFINITY, f32::MIN_POSITIVE / 2.0, -0.0];
        let mut fb = [0u8; 64];
        for (i, v) in f32s.iter().enumerate() {
            fb[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let mut want = [0f64; 64];
        let n = decode_clamp_on(Lane::Scalar, ElemKind::F32, &fb, -2.0, 2.0, &mut want);
        for lane in vector_lanes() {
            let mut got = [0f64; 64];
            decode_clamp_on(lane, ElemKind::F32, &fb, -2.0, 2.0, &mut got);
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "lane {lane:?} elem {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn decode_clamp_rejects_inverted_bounds() {
        let mut out = [0f64; 64];
        decode_clamp_on(Lane::Scalar, ElemKind::F64, &[0u8; 64], 1.0, -1.0, &mut out);
    }

    #[test]
    fn min_max_lanes_match_scalar() {
        let mut g = Gen(2);
        for round in 0..200 {
            // Arbitrary lengths exercise the vector tails.
            let len = (g.next() % 65) as usize;
            let mut vals = vec![0f64; len];
            for v in vals.iter_mut() {
                let bits = g.next();
                *v = match round % 4 {
                    // Mix plain magnitudes with raw bit patterns
                    // (NaNs, infinities, denormals all occur).
                    0 => (bits as i64 % 1000) as f64 / 7.0,
                    _ => f64::from_bits(bits),
                };
            }
            let (smin, smax) = min_max_on(Lane::Scalar, &vals);
            for lane in vector_lanes() {
                let (vmin, vmax) = min_max_on(lane, &vals);
                // NaN accumulators are impossible; compare numerically
                // (±0 ties may differ in sign, which nothing observes)
                // and bitwise for everything except zeros.
                assert_eq!(smin == vmin || (smin.is_nan() && vmin.is_nan()), true, "{lane:?} min {smin} vs {vmin}");
                assert_eq!(smax == vmax || (smax.is_nan() && vmax.is_nan()), true, "{lane:?} max {smax} vs {vmax}");
                if smin != 0.0 {
                    assert_eq!(smin.to_bits(), vmin.to_bits(), "{lane:?}");
                }
                if smax != 0.0 {
                    assert_eq!(smax.to_bits(), vmax.to_bits(), "{lane:?}");
                }
            }
        }
    }

    #[test]
    fn min_max_skips_nan_and_handles_all_nan() {
        let vals = [f64::NAN, 3.0, f64::NAN, -7.0, f64::NAN];
        for lane in Lane::ALL.into_iter().filter(|l| l.available()) {
            assert_eq!(min_max_on(lane, &vals), (-7.0, 3.0), "{lane:?}");
            let (mn, mx) = min_max_on(lane, &[f64::NAN; 5]);
            assert_eq!(mn, f64::INFINITY, "{lane:?}");
            assert_eq!(mx, f64::NEG_INFINITY, "{lane:?}");
            assert_eq!(min_max_on(lane, &[]), (f64::INFINITY, f64::NEG_INFINITY));
        }
    }

    #[test]
    fn sum_seq_is_order_exact() {
        // A sequence where reassociation visibly changes the result.
        let vals = [1e16, 1.0, -1e16, 1.0];
        // (1e16 + 1) rounds back to 1e16, so the in-order sum is 1.0 —
        // any reassociation (e.g. (1+1) + (1e16−1e16)) would give 2.0.
        assert_eq!(sum_seq(&vals), 1.0);
        let mut manual = 0.0;
        for v in vals {
            manual += v;
        }
        assert_eq!(sum_seq(&vals).to_bits(), manual.to_bits());
    }

    #[test]
    fn match_mask_lanes_match_scalar() {
        let mut g = Gen(3);
        for _ in 0..500 {
            let len = (g.next() % 20) as usize;
            let mut keys = vec![0u64; len];
            for k in keys.iter_mut() {
                // Small key space forces collisions; occasionally use
                // keys whose 32-bit halves match other keys' halves to
                // stress the SSE2 half-compare trick.
                *k = match g.next() % 4 {
                    0 => g.next() % 4,
                    1 => (g.next() % 4) << 32,
                    2 => ((g.next() % 4) << 32) | (g.next() % 4),
                    _ => g.next(),
                };
            }
            let needle = if len > 0 && g.next() % 2 == 0 { keys[(g.next() as usize) % len] } else { g.next() };
            let want = match_mask_on(Lane::Scalar, &keys, needle);
            for lane in vector_lanes() {
                assert_eq!(want, match_mask_on(lane, &keys, needle), "{lane:?} keys {keys:?} needle {needle}");
            }
        }
    }

    #[test]
    fn match_mask_half_collisions_do_not_false_positive() {
        // Keys sharing exactly one 32-bit half with the needle.
        let needle = 0x1111_2222_3333_4444u64;
        let keys = [
            0x1111_2222_0000_0000u64, // high half matches
            0x0000_0000_3333_4444u64, // low half matches
            needle,                   // full match
            0x3333_4444_1111_2222u64, // swapped halves
        ];
        for lane in Lane::ALL.into_iter().filter(|l| l.available()) {
            assert_eq!(match_mask_on(lane, &keys, needle), 0b0100, "{lane:?}");
        }
    }

    #[test]
    fn eq64_and_copy64_lanes_agree() {
        let mut g = Gen(4);
        for _ in 0..200 {
            let a = g.bytes();
            let mut b = a;
            if g.next() % 2 == 0 {
                let i = (g.next() % 64) as usize;
                b[i] ^= (1 + (g.next() % 255)) as u8;
            }
            let want = a == b;
            for lane in Lane::ALL.into_iter().filter(|l| l.available()) {
                assert_eq!(eq64_on(lane, &a, &b), want, "{lane:?}");
                let mut dst = [0u8; 64];
                copy64_on(lane, &mut dst, &a);
                assert_eq!(dst, a, "{lane:?}");
            }
        }
    }

    #[test]
    fn global_lane_is_cached_and_available() {
        let l = lane();
        assert!(l.available());
        assert_eq!(l, lane());
    }
}
