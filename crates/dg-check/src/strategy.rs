//! Built-in strategies: ranges, `any`, vectors, and tuples.

use crate::{SplitMix64, Strategy};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Ranges as strategies (`6u32..16`, `1u8..=8`, `0.0f64..0.5`, ...).

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value, self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value, *self.start())
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink an integer toward `floor`: the floor itself, then the
/// midpoint, then one step down — a geometric-then-linear descent that
/// converges in O(log distance) greedy rounds.
fn shrink_int_toward<T>(value: T, floor: T) -> Vec<T>
where
    T: Copy + PartialOrd + MidpointDown,
{
    let mut out = Vec::new();
    if value > floor {
        out.push(floor);
        let mid = T::midpoint(floor, value);
        if mid > floor && mid < value {
            out.push(mid);
        }
        out.push(T::pred(value));
    }
    out.dedup_by(|a, b| a == b);
    out
}

/// Midpoint and predecessor, for shrink descent.
trait MidpointDown: Sized {
    fn midpoint(lo: Self, hi: Self) -> Self;
    fn pred(self) -> Self;
}

macro_rules! midpoint_down {
    ($($t:ty),+) => {$(
        impl MidpointDown for $t {
            fn midpoint(lo: Self, hi: Self) -> Self {
                // lo + (hi - lo) / 2 avoids overflow for signed types.
                lo + (hi - lo) / 2
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )+};
}
midpoint_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid > self.start && mid < *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )+};
}
float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// `any::<T>()`: the type's full domain.

/// Types with a full-domain strategy (proptest's `any`). Unlike
/// [`dg_rand::Sample`], floats cover *all* bit patterns — including
/// NaN, infinities, and subnormals — so properties must `assume!`
/// finiteness when they need it.
pub trait Arbitrary: Clone + Debug {
    fn arbitrary(rng: &mut SplitMix64) -> Self;
    fn shrink(&self) -> Vec<Self>;
}

/// Strategy over a type's full domain; build with [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SplitMix64) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SplitMix64) -> Self {
                rng.gen()
            }
            fn shrink(&self) -> Vec<Self> {
                shrink_int_toward(*self, 0)
            }
        }
    )+};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SplitMix64) -> Self {
                rng.gen()
            }
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    Vec::new()
                } else if v > 0 {
                    shrink_int_toward(v, 0)
                } else if v == <$t>::MIN {
                    vec![0, <$t>::MIN / 2]
                } else {
                    // Try the positive mirror first, then climb to 0.
                    vec![-v, 0, v / 2, v + 1]
                }
            }
        }
    )+};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SplitMix64) -> Self {
        rng.gen()
    }
    fn shrink(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

macro_rules! arbitrary_float {
    ($($t:ty: $bits:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SplitMix64) -> Self {
                <$t>::from_bits(rng.gen::<$bits>())
            }
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0.0 {
                    Vec::new()
                } else if !v.is_finite() {
                    vec![0.0, 1.0]
                } else {
                    vec![0.0, v / 2.0, v.trunc()]
                }
            }
        }
    )+};
}
arbitrary_float!(f32: u32, f64: u64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut SplitMix64) -> Self {
        rng.gen()
    }
    fn shrink(&self) -> Vec<Self> {
        if self.iter().all(|&b| b == 0) {
            Vec::new()
        } else {
            vec![[0u8; N]]
        }
    }
}

// ---------------------------------------------------------------------------
// Vectors.

/// Length specification for [`vec`]: an exact `usize` or a
/// `Range<usize>` of lengths.
pub trait LenSpec {
    fn pick(&self, rng: &mut SplitMix64) -> usize;
    fn min(&self) -> usize;
}

impl LenSpec for usize {
    fn pick(&self, _rng: &mut SplitMix64) -> usize {
        *self
    }
    fn min(&self) -> usize {
        *self
    }
}

impl LenSpec for Range<usize> {
    fn pick(&self, rng: &mut SplitMix64) -> usize {
        rng.gen_range(self.clone())
    }
    fn min(&self) -> usize {
        self.start
    }
}

/// Strategy for vectors of another strategy's values; build with
/// [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// `Vec<T>` strategy with elements from `element` and length from
/// `len` (proptest's `prop::collection::vec`).
pub fn vec<S: Strategy, L: LenSpec>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let min = self.len.min();
        // Structural shrinks first: halve, then drop one element from
        // the tail, then from the head.
        if value.len() > min {
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        // Then element-wise shrinks, capped to the first 16 slots so
        // huge vectors don't explode the greedy search.
        for (i, v) in value.iter().enumerate().take(16) {
            for simpler in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies (up to the 6 components the test-suite needs).

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(42)
    }

    #[test]
    fn range_strategy_stays_in_domain_under_shrinking() {
        let s = 6u32..16;
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(s.contains(&v));
            for c in s.shrink(&v) {
                assert!(s.contains(&c), "shrink escaped domain: {c}");
                assert!(c < v, "shrink must make progress: {c} !< {v}");
            }
        }
    }

    #[test]
    fn inclusive_range_strategy_hits_both_ends() {
        let s = 1u8..=8;
        let mut r = rng();
        let vals: Vec<u8> = (0..300).map(|_| s.generate(&mut r)).collect();
        assert!(vals.contains(&1) && vals.contains(&8));
        assert!(vals.iter().all(|v| (1..=8).contains(v)));
    }

    #[test]
    fn float_range_shrink_terminates() {
        let s = 0.5f64..10.0;
        let mut v = 9.0;
        for _ in 0..200 {
            match s.shrink(&v).last() {
                Some(&next) => v = next,
                None => break,
            }
        }
        assert!((0.5..10.0).contains(&v));
    }

    #[test]
    fn any_float_covers_non_finite_values() {
        let s = any::<f32>();
        let mut r = rng();
        let mut saw_non_finite = false;
        for _ in 0..10_000 {
            if !s.generate(&mut r).is_finite() {
                saw_non_finite = true;
                break;
            }
        }
        assert!(saw_non_finite, "any::<f32>() should reach NaN/inf bit patterns");
    }

    #[test]
    fn vec_respects_length_spec() {
        let s = vec(0u32..100, 3..7);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((3..7).contains(&v.len()));
            for c in s.shrink(&v) {
                assert!(c.len() >= 3, "shrink below min length: {}", c.len());
            }
        }
        let exact = vec(0u32..100, 16usize);
        assert_eq!(exact.generate(&mut r).len(), 16);
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0u32..10, 0u32..10);
        for c in s.shrink(&(3, 4)) {
            let changed = usize::from(c.0 != 3) + usize::from(c.1 != 4);
            assert_eq!(changed, 1, "candidate {c:?} changed {changed} components");
        }
    }
}
