//! A miniature property-testing harness, replacing the external
//! `proptest` crate so the workspace stays hermetic (see `README.md`,
//! "Hermetic build & determinism").
//!
//! The model is deliberately small:
//!
//! - A [`Strategy`] both *generates* values from a seeded
//!   [`SplitMix64`] stream and *shrinks* a failing value toward a
//!   simpler one, staying inside the strategy's own domain (a value
//!   drawn from `6u32..16` never shrinks below 6).
//! - [`check`] runs a property over many generated cases. Case seeds
//!   are derived from a fixed per-property seed, so failures reproduce
//!   exactly; set `DG_CHECK_SEED` to explore a different stream and
//!   `DG_CHECK_CASES` to change the case count.
//! - The [`props!`] macro wraps each property into a `#[test]`,
//!   mirroring proptest's `ident in strategy` binding syntax.
//!
//! Properties signal failure by panicking (plain `assert!` works) and
//! discard impossible cases with [`assume!`]. On failure the harness
//! shrinks the input and panics with the minimal counterexample, the
//! property seed, and the original panic message.
//!
//! ```
//! dg_check::props! {
//!     #[cases(64)]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use dg_rand::SplitMix64;

mod strategy;
pub use strategy::{any, vec, Any, Arbitrary, VecStrategy};

/// How a strategy produces and simplifies test inputs.
pub trait Strategy {
    type Value: Clone + Debug;

    /// Draw one value from the strategy's domain.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Candidate simplifications of `value`, all inside the domain.
    /// An empty vector means the value is fully shrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

/// Harness configuration. [`Config::default`] honours the
/// `DG_CHECK_CASES` and `DG_CHECK_SEED` environment variables.
#[derive(Clone, Debug)]
pub struct Config {
    /// Generated cases per property.
    pub cases: u32,
    /// Base seed; combined with the property name so each property
    /// draws an independent stream.
    pub seed: u64,
    /// Cap on property executions spent shrinking a failure.
    pub max_shrink_steps: u32,
}

/// Default base seed: arbitrary but fixed, so every checkout runs the
/// exact same cases.
pub const DEFAULT_SEED: u64 = 0xD66E_12CA_C4E5_0000;

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |key: &str| std::env::var(key).ok().and_then(|v| v.parse().ok());
        Config {
            cases: env_u64("DG_CHECK_CASES").map_or(96, |c| c as u32),
            seed: env_u64("DG_CHECK_SEED").unwrap_or(DEFAULT_SEED),
            max_shrink_steps: 1024,
        }
    }
}

/// Panic payload marking a discarded (assumed-away) case rather than a
/// failure.
pub struct Discard;

/// Discard the current case when a precondition does not hold
/// (proptest's `prop_assume!`).
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::Discard);
        }
    };
}

enum CaseOutcome {
    Pass,
    Discarded,
    Fail(String),
}

fn run_case<V>(prop: &dyn Fn(V), value: V) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.is::<Discard>() {
                CaseOutcome::Discarded
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Fail(s.clone())
            } else {
                CaseOutcome::Fail("<non-string panic payload>".to_string())
            }
        }
    }
}

/// FNV-1a, to give each property its own seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `prop` over `cfg.cases` values drawn from `strategy`; on
/// failure, shrink and panic with the minimal counterexample.
///
/// # Panics
///
/// Panics if the property fails for any generated value, or if more
/// than 90% of cases are discarded by [`assume!`].
pub fn check<S: Strategy>(name: &str, cfg: &Config, strategy: &S, prop: &dyn Fn(S::Value)) {
    let mut seeder = SplitMix64::seed_from_u64(cfg.seed ^ hash_name(name));
    let mut discarded = 0u64;
    let mut executed = 0u64;
    for case in 0..cfg.cases {
        let case_seed = seeder.next_u64();
        let value = strategy.generate(&mut SplitMix64::seed_from_u64(case_seed));
        match run_case(prop, value.clone()) {
            CaseOutcome::Pass => executed += 1,
            CaseOutcome::Discarded => discarded += 1,
            CaseOutcome::Fail(msg) => {
                let (minimal, msg, steps) = shrink_failure(cfg, strategy, prop, value, msg);
                panic!(
                    "[dg-check] property `{name}` failed at case {case} \
                     (seed {seed:#x}, shrunk {steps} steps)\n\
                     minimal input: {minimal:?}\n\
                     failure: {msg}\n\
                     rerun with DG_CHECK_SEED={base} to reproduce the stream",
                    seed = case_seed,
                    base = cfg.seed,
                );
            }
        }
    }
    assert!(
        executed >= u64::from(cfg.cases) / 10,
        "[dg-check] property `{name}` discarded {discarded} of {} cases; \
         loosen its assume!() preconditions",
        cfg.cases,
    );
}

/// Greedy shrink: repeatedly replace the failing value with the first
/// shrink candidate that still fails, until none do or the budget runs
/// out. Discarded candidates count as passing.
fn shrink_failure<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    prop: &dyn Fn(S::Value),
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in strategy.shrink(&value) {
            steps += 1;
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            if let CaseOutcome::Fail(m) = run_case(prop, candidate.clone()) {
                value = candidate;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Define `#[test]` property functions (proptest's `proptest!`).
///
/// Each property lists `name in strategy` bindings; the body runs once
/// per generated case with the bindings in scope, owned. An optional
/// leading `cases = N;` overrides the case count for the whole block
/// (proptest's `ProptestConfig::with_cases`).
#[macro_export]
macro_rules! props {
    (cases = $cases:expr; $($rest:tt)+) => {
        $crate::__props_impl! { ($cases) $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__props_impl! { ($crate::Config::default().cases) $($rest)+ }
    };
}

/// Implementation detail of [`props!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    (($cases:expr) $($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let mut cfg = $crate::Config::default();
                cfg.cases = $cases;
                let strategy = ($($strat,)+);
                $crate::check(stringify!($name), &cfg, &strategy, &|($($var,)+)| $body);
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config { cases: 50, ..Config::default() };
        let counter = std::cell::Cell::new(0u32);
        check("always_true", &cfg, &(0u32..100), &|_v| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Fails for v >= 50: the minimal counterexample is exactly 50.
        let cfg = Config::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("fails_at_50", &cfg, &(0u32..1000), &|v| {
                assert!(v < 50, "too big: {v}");
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: 50"), "unshrunk failure: {msg}");
        assert!(msg.contains("too big: 50"), "wrong message: {msg}");
    }

    #[test]
    fn vec_failures_shrink_small() {
        // Fails whenever the vec contains an element >= 10; minimal
        // counterexample is the single-element vec [10].
        let cfg = Config::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("vec_shrinks", &cfg, &(vec(0u32..100, 1..20),), &|(v,)| {
                assert!(v.iter().all(|&x| x < 10), "bad vec {v:?}");
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: ([10],)"), "unshrunk: {msg}");
    }

    #[test]
    fn assume_discards_without_failing() {
        let cfg = Config { cases: 40, ..Config::default() };
        check("assume_even", &cfg, &(0u32..100,), &|(v,)| {
            assume!(v % 2 == 0);
            assert_eq!(v % 2, 0);
        });
    }

    #[test]
    fn over_discarding_is_an_error() {
        let cfg = Config { cases: 40, ..Config::default() };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("assume_everything_away", &cfg, &(0u32..100,), &|(_v,)| {
                assume!(false);
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let cfg = Config { cases: 20, ..Config::default() };
        let collect = || {
            let got = std::cell::RefCell::new(Vec::new());
            check("determinism", &cfg, &(0u64..1_000_000,), &|(v,)| {
                got.borrow_mut().push(v);
            });
            got.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    props! {
        cases = 32;
        /// The macro front-end compiles with docs, multiple bindings,
        /// and a cases override.
        fn props_macro_compiles(a in 0u8..10, b in any::<bool>(), v in vec(0u16..99, 0..5)) {
            assert!(a < 10);
            let _ = b;
            assert!(v.len() < 5);
        }
    }
}
