//! Deterministic pseudo-randomness for the reproduction, with no
//! external dependencies.
//!
//! The whole workspace draws randomness from [`SplitMix64`] (Steele,
//! Lea & Flood, OOPSLA 2014 — the same mixer `java.util.SplittableRandom`
//! and xoshiro seeding use). The generator and every derived sampling
//! method below are **part of the reproduction's pinned surface**: the
//! workloads' synthetic inputs, and therefore every table and figure,
//! are a pure function of the seeds fed to [`SplitMix64::seed_from_u64`].
//! Any change to the stream (the mixer constants, the range-sampling
//! strategy, the float conversion) shifts every downstream number, so
//! the first outputs of each method are pinned by `tests/golden.rs` and
//! a change here must be treated as a new major version of the
//! experiment inputs (see `README.md`, "Hermetic build & determinism").
//!
//! The facade mirrors the small subset of the `rand` crate the
//! workloads used — `seed_from_u64`, `gen_range` over integer and float
//! ranges, `gen_bool`, `gen`, `shuffle` — so kernel code reads the
//! same as it did against `rand::rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: 64 bits of state, one add + two xor-multiply mixes per
/// output. Passes BigCrush when seeded arbitrarily; more than enough
/// for synthetic-workload generation, and trivially reproducible.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment (2^64 / φ, forced odd).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Seed the generator. Identical seeds give identical streams on
    /// every platform, forever.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next `f64` uniform in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next `f32` uniform in `[0, 1)`, using the top 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniformly distributed value of a primitive type (`rand`'s
    /// `gen`). Floats land in `[0, 1)`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.next_f64() < p
    }

    /// A value uniform over `range` (half-open or inclusive, integer or
    /// float).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// Types [`SplitMix64::gen`] can produce.
pub trait Sample {
    fn sample(rng: &mut SplitMix64) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),+) => {$(
        impl Sample for $t {
            fn sample(rng: &mut SplitMix64) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f32 {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_f32()
    }
}

impl Sample for f64 {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_f64()
    }
}

impl<const N: usize> Sample for [u8; N] {
    fn sample(rng: &mut SplitMix64) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from. The trait is
/// parameterized by the element type so the range literal's type can be
/// inferred from the call site, as with `rand`'s `gen_range`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SplitMix64) -> T;
}

/// Map a raw output onto `[0, span)` with a widening multiply
/// (Lemire's multiply-shift; bias below 2^-64 for the spans used here,
/// and — unlike rejection sampling — a fixed one-draw cost that keeps
/// the stream position independent of the span).
fn scale_to_span(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(scale_to_span(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range {start}..={end}");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(scale_to_span(rng.next_u64(), span + 1) as $t)
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty: $next:ident),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                self.start + rng.$next() * (self.end - self.start)
            }
        }
    )+};
}
range_float!(f32: next_f32, f64: next_f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..4.0f32);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "gen_range misses values: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(3..3usize);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.45)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.45).abs() < 0.02, "gen_bool(0.45) rate {rate}");
        let mut rng = SplitMix64::seed_from_u64(6);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let mut rng = SplitMix64::seed_from_u64(6);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(8);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn gen_array_fills_every_byte_eventually() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut acc = [0u8; 8];
        for _ in 0..32 {
            let a: [u8; 8] = rng.gen();
            for (acc, b) in acc.iter_mut().zip(a) {
                *acc |= b;
            }
        }
        assert!(acc.iter().all(|&b| b != 0));
    }
}
