//! Golden-value tests pinning the `dg-rand` output streams.
//!
//! The PRNG streams are part of this repository's reproduction surface:
//! every kernel's synthetic input, and therefore every table and figure,
//! is a pure function of them (see README.md, "Hermetic build &
//! determinism"). These constants were produced by the current
//! implementation and must never change silently. If an intentional
//! algorithm change breaks them, bump the documented stream version in
//! `dg-rand`'s crate docs and regenerate the constants — updating them
//! invalidates all previously recorded experiment numbers.

use dg_rand::SplitMix64;

const SEED: u64 = 0xD0_99E1;

/// First 16 raw outputs of `SplitMix64::seed_from_u64(0xD0_99E1)`.
#[test]
fn raw_stream_is_pinned() {
    let expected: [u64; 16] = [
        0xE471_EF14_54E5_01AE,
        0x165C_C883_F2FC_E1ED,
        0xE3DE_60DE_6777_63C3,
        0x0473_DD03_1FD6_400A,
        0xD1E7_9159_69E6_4DAA,
        0x2DBC_832A_72F0_011D,
        0xA83C_0D47_FAB1_9A6B,
        0x0EF3_A0E8_D389_6275,
        0x883B_5187_15AD_D0A5,
        0xFE9A_EB4D_D451_5B48,
        0x520D_5CF9_CA09_CFAC,
        0x0DB3_C16A_6E02_B7A7,
        0x0DB8_FE20_980A_E70B,
        0xB38F_7EC2_5DC9_3363,
        0x8329_365C_3482_FBE5,
        0x0A92_B4D4_CD01_1C72,
    ];
    let mut rng = SplitMix64::seed_from_u64(SEED);
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "raw output {i} diverged");
    }
}

#[test]
fn gen_range_int_half_open_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u32> = (0..8).map(|_| rng.gen_range(0..1000u32)).collect();
    assert_eq!(got, [892, 87, 890, 17, 819, 178, 657, 58]);
}

#[test]
fn gen_range_int_inclusive_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<i64> = (0..8).map(|_| rng.gen_range(-50..=50i64)).collect();
    assert_eq!(got, [40, -42, 39, -49, 32, -32, 16, -45]);
}

// Float goldens compare bit patterns, not approximate values: the
// stream contract is exact.
#[test]
fn gen_range_f64_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u64> = (0..4).map(|_| rng.gen_range(0.0..1.0f64).to_bits()).collect();
    assert_eq!(
        got,
        [
            0x3FEC_8E3D_E28A_9CA0,
            0x3FB6_5CC8_83F2_FCE0,
            0x3FEC_7BCC_1BCC_EEEC,
            0x3F91_CF74_0C7F_5900,
        ]
    );
}

#[test]
fn gen_range_f32_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0).to_bits()).collect();
    assert_eq!(got, [0x3F48_E3DE, 0xBF53_4670, 0x3F47_BCC0, 0xBF77_1846]);
}

#[test]
fn gen_bool_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<bool> = (0..16).map(|_| rng.gen_bool(0.3)).collect();
    let expected = [
        false, true, false, true, false, true, false, true, false, false, false, true, true,
        false, false, true,
    ];
    assert_eq!(got, expected);
}

#[test]
fn gen_u8_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u8> = (0..8).map(|_| rng.gen::<u8>()).collect();
    assert_eq!(got, [174, 237, 195, 10, 170, 29, 107, 117]);
}

#[test]
fn next_f32_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u32> = (0..4).map(|_| rng.next_f32().to_bits()).collect();
    assert_eq!(got, [0x3F64_71EF, 0x3DB2_E640, 0x3F63_DE60, 0x3C8E_7BA0]);
}

#[test]
fn next_f64_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let got: Vec<u64> = (0..4).map(|_| rng.next_f64().to_bits()).collect();
    assert_eq!(
        got,
        [
            0x3FEC_8E3D_E28A_9CA0,
            0x3FB6_5CC8_83F2_FCE0,
            0x3FEC_7BCC_1BCC_EEEC,
            0x3F91_CF74_0C7F_5900,
        ]
    );
}

#[test]
fn shuffle_is_pinned() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let mut perm: Vec<u32> = (0..10).collect();
    rng.shuffle(&mut perm);
    assert_eq!(perm, [3, 1, 5, 2, 6, 4, 9, 7, 0, 8]);
}
