//! Hermetic parallel-execution infrastructure for the experiment
//! harness: a work-stealing scoped job pool ([`Pool`]) and a fast
//! non-cryptographic hasher ([`fxmap`]) for simulator hot paths.
//!
//! Like every crate in this workspace, `dg-par` has zero external
//! dependencies (see README.md, "Hermetic build & determinism"): the
//! pool is built on `std::thread::scope`, mutex-guarded per-worker
//! deques and atomic counters — no `rayon`, no `crossbeam`.
//!
//! Design requirements (set by the sweep engine in `dg-bench`):
//!
//! 1. **Scoped jobs** — closures may borrow from the caller's stack
//!    (kernel suites, configuration tables) without `'static` bounds.
//! 2. **Deterministic result ordering** — results come back indexed by
//!    submission order no matter which worker ran which job, so a
//!    parallel sweep is bit-identical to a serial one.
//! 3. **Work stealing** — jobs are distributed round-robin, and an idle
//!    worker steals from the busiest-looking victim, which keeps the
//!    pool busy under heavily skewed job sizes (a `canneal` evaluation
//!    costs many times a `blackscholes` one).
//! 4. **Per-job timing hooks** — every job's wall-clock is recorded,
//!    feeding the `--timing` benchmark trajectory in `repro_all`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fxmap;
pub mod pool;

pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pool::{default_workers, Pool, RunReport};
