//! FxHash-style hashing for simulator hot paths.
//!
//! The simulator's inner loops hash small fixed-width keys — block
//! addresses in the coherence directory, 64-byte-aligned addresses in
//! [`MemoryImage`] — millions of times per run. `std`'s default SipHash
//! is DoS-resistant but pays for it with ~1ns+ per small key; none of
//! these maps are exposed to untrusted input, so we trade that
//! resistance for speed with the multiply-rotate hash used by the
//! Firefox and rustc codebases ("FxHash").
//!
//! The core step folds each input word into the state as
//! `state = (state.rotate_left(5) ^ word) * K` with a fixed odd 64-bit
//! constant `K`. The hash is deterministic across processes (no random
//! seed), which also helps reproducibility: iteration order of an
//! `FxHashMap` is stable for a fixed insertion sequence.

use std::hash::{BuildHasherDefault, Hasher};

/// Type alias for a `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Type alias for a `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The odd multiplier from the Firefox / rustc FxHash implementations:
/// `(sqrt(2) - 1) * 2^64`, truncated to an odd integer.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// A fast, non-cryptographic, deterministic 64-bit hasher.
///
/// Not resistant to collision attacks — use only on trusted keys
/// (block addresses, small tuples), never on external input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-instance randomness: two independently built hashers
        // must agree, which is what makes map iteration reproducible.
        let a = hash_of(&0xdead_beef_u64);
        let b = hash_of(&0xdead_beef_u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_block_addrs() {
        // Block addresses differ in low bits after the offset shift;
        // consecutive keys must not collide.
        let hashes: Vec<u64> = (0u64..1024).map(|addr| hash_of(&(addr << 6))).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collision among 1024 block addrs");
    }

    #[test]
    fn unaligned_tail_bytes_are_hashed() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 8-byte chunk + 1 tail byte
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn tail_length_disambiguates_zero_padding() {
        // b"a" and b"a\0" pad to the same 8-byte word; the encoded
        // remainder length must keep them distinct.
        let mut h1 = FxHasher::default();
        h1.write(b"a");
        let mut h2 = FxHasher::default();
        h2.write(b"a\0");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for addr in 0..100u64 {
            map.insert(addr << 6, addr as u32);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&(42 << 6)), Some(&42));

        let mut set: FxHashSet<(u64, u8)> = FxHashSet::default();
        set.insert((7, 1));
        set.insert((7, 1));
        assert_eq!(set.len(), 1);
    }
}
