//! A scoped work-stealing job pool with deterministic result ordering.
//!
//! The pool exists to run one *batch* of heterogeneous jobs — e.g.
//! every (configuration × kernel) evaluation of a figure — across all
//! available cores. It is not a long-lived executor: each [`Pool::run`]
//! call spawns its workers inside a `std::thread::scope`, so jobs may
//! borrow from the caller's stack, and everything is joined before the
//! call returns.
//!
//! Scheduling: jobs are dealt round-robin onto per-worker deques.
//! A worker pops from the *front* of its own deque (submission order)
//! and, when empty, steals from the *back* of the currently longest
//! victim deque. Stealing from the opposite end keeps contention low
//! and tends to migrate the large straggler jobs that round-robin
//! placement gets wrong when job sizes are skewed.
//!
//! Determinism: each job writes its result into a dedicated indexed
//! slot, so the returned `Vec` is always in submission order no matter
//! which worker ran which job — a parallel sweep is therefore
//! bit-identical to a serial one as long as the jobs themselves are
//! deterministic (simulator runs are; see DESIGN.md).
//!
//! Panics: worker panics are caught per-job and re-raised on the caller
//! thread once the batch drains. If several jobs panic, the one with
//! the lowest submission index wins, again for reproducibility.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count chosen by
/// [`default_workers`]. `DG_PAR_THREADS=1` forces fully serial, inline
/// execution — the reference path used by the determinism tests.
pub const THREADS_ENV: &str = "DG_PAR_THREADS";

/// Worker count used by [`Pool::new`]: the `DG_PAR_THREADS` override if
/// set and parseable, otherwise `std::thread::available_parallelism()`,
/// otherwise 1. Always at least 1.
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Timing and scheduling report for one [`Pool::run_report`] batch.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-job wall-clock, indexed by submission order.
    pub job_times: Vec<Duration>,
    /// Wall-clock of the whole batch (spawn to join).
    pub elapsed: Duration,
    /// Number of jobs executed by a worker other than the one they
    /// were initially dealt to.
    pub steals: usize,
    /// Number of workers the batch actually used.
    pub workers: usize,
}

/// A scoped work-stealing job pool. See the module docs for the
/// scheduling and determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

/// One pending job: its submission index plus the closure to run.
struct Job<'scope, T> {
    index: usize,
    run: Box<dyn FnOnce() -> T + Send + 'scope>,
}

/// Outcome slot for one job, written by whichever worker ran it.
enum Slot<T> {
    Pending,
    Done(T, Duration),
    Panicked(Box<dyn std::any::Any + Send>),
}

impl Pool {
    /// A pool sized by [`default_workers`].
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// A pool with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(workers: usize) -> Self {
        Pool { workers: workers.max(1) }
    }

    /// The worker count this pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `jobs` to completion and return their results in submission
    /// order. Panics from jobs are re-raised here (lowest index first).
    pub fn run<'env, T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        self.run_report(jobs).0
    }

    /// Like [`Pool::run`], but also returns per-job timing and
    /// scheduling statistics.
    pub fn run_report<'env, T, F>(&self, jobs: Vec<F>) -> (Vec<T>, RunReport)
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n_jobs = jobs.len();
        let workers = self.workers.min(n_jobs).max(1);
        let start = Instant::now();

        if workers == 1 {
            // Inline serial path: no threads, used for the reference
            // runs the determinism tests compare against.
            let mut results = Vec::with_capacity(n_jobs);
            let mut job_times = Vec::with_capacity(n_jobs);
            for job in jobs {
                let t0 = Instant::now();
                let _span = dg_obs::span("par.job", 0);
                results.push(job());
                drop(_span);
                job_times.push(t0.elapsed());
            }
            let report = RunReport { job_times, elapsed: start.elapsed(), steals: 0, workers: 1 };
            return (results, report);
        }

        // Deal jobs round-robin onto per-worker deques.
        let queues: Vec<Mutex<VecDeque<Job<'_, T>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let mut home = vec![0usize; n_jobs];
        for (index, f) in jobs.into_iter().enumerate() {
            let w = index % workers;
            home[index] = w;
            queues[w].lock().unwrap().push_back(Job { index, run: Box::new(f) });
        }

        let slots: Vec<Mutex<Slot<T>>> = (0..n_jobs).map(|_| Mutex::new(Slot::Pending)).collect();
        let remaining = AtomicUsize::new(n_jobs);
        let steals = AtomicUsize::new(0);
        let home = &home;
        let queues = &queues;
        let slots = &slots;
        let remaining = &remaining;
        let steals = &steals;

        std::thread::scope(|scope| {
            for me in 0..workers {
                scope.spawn(move || loop {
                    if remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // Own work first, front of the deque.
                    let job = queues[me].lock().unwrap().pop_front();
                    let job = match job {
                        Some(j) => Some(j),
                        None => {
                            // Steal from the back of the longest victim.
                            let lens: Vec<usize> = (0..workers)
                                .map(|w| {
                                    if w == me {
                                        0
                                    } else {
                                        queues[w].lock().unwrap().len()
                                    }
                                })
                                .collect();
                            steal_victim(me, &lens)
                                .and_then(|w| queues[w].lock().unwrap().pop_back())
                        }
                    };
                    let Some(job) = job else {
                        // Nothing runnable right now; other workers may
                        // still finish or repopulate nothing — just spin
                        // gently until the batch drains.
                        std::thread::yield_now();
                        continue;
                    };
                    if home[job.index] != me {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let t0 = Instant::now();
                    let span = dg_obs::span("par.job", me as u64);
                    let outcome = catch_unwind(AssertUnwindSafe(job.run));
                    drop(span);
                    let dt = t0.elapsed();
                    *slots[job.index].lock().unwrap() = match outcome {
                        Ok(value) => Slot::Done(value, dt),
                        Err(payload) => Slot::Panicked(payload),
                    };
                    remaining.fetch_sub(1, Ordering::Release);
                });
            }
        });

        // Collect in submission order; re-raise the lowest-index panic.
        let mut results = Vec::with_capacity(n_jobs);
        let mut job_times = Vec::with_capacity(n_jobs);
        for slot in slots {
            match std::mem::replace(&mut *slot.lock().unwrap(), Slot::Pending) {
                Slot::Done(value, dt) => {
                    results.push(value);
                    job_times.push(dt);
                }
                Slot::Panicked(payload) => resume_unwind(payload),
                Slot::Pending => unreachable!("job never ran despite batch draining"),
            }
        }
        let report = RunReport {
            job_times,
            elapsed: start.elapsed(),
            steals: steals.load(Ordering::Relaxed),
            workers,
        };
        (results, report)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

/// Choose the queue worker `me` steals from, given every worker's
/// current queue length: the longest *other* non-empty queue (ties go
/// to the highest index, matching the historical scan order).
///
/// Never returns `me` — a worker re-popping its own queue from the back
/// would invert its submission-order front-pop contract — and returns
/// `None` when every other queue is empty, so the caller doesn't
/// re-lock a victim only to find nothing. Kept as a standalone pure
/// function so these two properties are directly testable outside the
/// thread scope.
fn steal_victim(me: usize, queue_lens: &[usize]) -> Option<usize> {
    queue_lens
        .iter()
        .enumerate()
        .filter(|&(w, &len)| w != me && len > 0)
        .max_by_key(|&(_, &len)| len)
        .map(|(w, _)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Pool::with_workers(4);
        // Reverse-skewed sleeps so completion order differs from
        // submission order.
        let jobs: Vec<_> = (0..16usize)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis((16 - i) as u64 % 5));
                    i * i
                }
            })
            .collect();
        let results = pool.run(jobs);
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_jobs_can_borrow_from_the_stack() {
        let data: Vec<u64> = (0..100).collect();
        let data_ref = &data;
        let pool = Pool::with_workers(3);
        let jobs: Vec<_> = (0..10usize)
            .map(|i| move || data_ref[i * 10..(i + 1) * 10].iter().sum::<u64>())
            .collect();
        let partials = pool.run(jobs);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = Pool::with_workers(1);
        let main_thread = std::thread::current().id();
        let (ids, report) = pool.run_report(vec![
            move || std::thread::current().id(),
            move || std::thread::current().id(),
        ]);
        assert!(ids.iter().all(|id| *id == main_thread));
        assert_eq!(report.steals, 0);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = Pool::with_workers(8);
        let results: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn panic_propagates_with_lowest_index_payload() {
        let pool = Pool::with_workers(4);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 || i == 5 {
                        panic!("job {i} failed");
                    }
                    i as u32
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)))
            .expect_err("batch with panicking jobs must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert_eq!(msg, "job 2 failed", "lowest-index panic wins");
    }

    #[test]
    fn idle_worker_steals_under_skew() {
        // Worker 0's deque gets jobs 0 and 2 (round-robin over 2
        // workers). Job 0 spin-waits on a flag that only job 2 sets, so
        // the batch can only finish if worker 1 steals job 2 from
        // worker 0's deque.
        let flag = AtomicBool::new(false);
        let flag = &flag;
        let pool = Pool::with_workers(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(move || {
                while !flag.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                0
            }),
            Box::new(move || 1),
            Box::new(move || {
                flag.store(true, Ordering::Release);
                2
            }),
        ];
        let (results, report) = pool.run_report(jobs);
        assert_eq!(results, vec![0, 1, 2]);
        assert!(report.steals >= 1, "expected at least one steal, got {}", report.steals);
    }

    #[test]
    fn per_job_timing_is_recorded() {
        let pool = Pool::with_workers(2);
        let (_, report) = pool.run_report(vec![
            || std::thread::sleep(Duration::from_millis(15)),
            || (),
        ]);
        assert_eq!(report.job_times.len(), 2);
        assert!(report.job_times[0] >= Duration::from_millis(10));
        assert!(report.elapsed >= report.job_times[0]);
    }

    #[test]
    fn steal_victim_never_selects_self() {
        // Regression guard for the steal path: even when the thief's
        // own queue is the longest by far, it must never be chosen —
        // stealing from one's own back would break the front-pop
        // submission-order contract.
        let lens = [100, 3, 0, 7];
        for me in 0..lens.len() {
            if let Some(v) = steal_victim(me, &lens) {
                assert_ne!(v, me, "worker {me} stole from itself (lens {lens:?})");
            }
        }
        // me = 0 owns the only long queue; the longest *other* wins.
        assert_eq!(steal_victim(0, &lens), Some(3));
        assert_eq!(steal_victim(3, &lens), Some(0));
    }

    #[test]
    fn steal_victim_skips_empty_queues() {
        assert_eq!(steal_victim(0, &[5, 0, 0]), None, "only own work left");
        assert_eq!(steal_victim(0, &[0, 0, 0]), None);
        assert_eq!(steal_victim(0, &[9]), None, "single worker has no victims");
        assert_eq!(steal_victim(1, &[0, 4, 2]), Some(2));
    }

    #[test]
    fn steal_victim_prefers_longest_with_stable_ties() {
        assert_eq!(steal_victim(0, &[1, 2, 9, 3]), Some(2));
        // Ties resolve to the highest index (historical scan order).
        assert_eq!(steal_victim(0, &[1, 4, 4, 4]), Some(3));
        assert_eq!(steal_victim(3, &[4, 4, 4, 1]), Some(2));
    }

    #[test]
    fn own_queue_drains_front_first_in_submission_order() {
        // 2 workers: the round-robin deal gives evens to worker 0 and
        // odds to worker 1. Worker 1's first job blocks long enough for
        // worker 0 to drain its own deque, so the evens' execution
        // order is worker 0's own-pop order — front-first must yield
        // 0,2,4,6 (a back-pop would yield 6,4,2,0). Worker 0 may then
        // steal the remaining odd jobs, which cannot reorder the evens
        // it already ran.
        let order = Mutex::new(Vec::new());
        let order = &order;
        let pool = Pool::with_workers(2);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 1 {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    order.lock().unwrap().push(i);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.run(jobs);
        let order = order.lock().unwrap();
        let evens: Vec<usize> = order.iter().copied().filter(|i| i % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6], "worker 0's deque must drain front-first: {order:?}");
    }

    #[test]
    fn env_override_forces_worker_count() {
        // default_workers() consults DG_PAR_THREADS; exercise the
        // parse path directly without mutating process env (other
        // tests run concurrently).
        let pool = Pool::with_workers(0);
        assert_eq!(pool.workers(), 1, "worker count clamps to >= 1");
        assert!(default_workers() >= 1);
    }
}
