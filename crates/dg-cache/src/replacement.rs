//! Pluggable per-set replacement policies.

use std::fmt::Debug;

/// A per-set replacement policy for a set-associative structure.
///
/// The policy tracks access recency/order per `(set, way)` and selects
/// victims. Invalid ways are preferred automatically by [`TagArray`]
/// before the policy is consulted, so `victim` may assume a full set.
///
/// The paper uses LRU everywhere (Table 1) and notes that the decoupled
/// arrays permit *distinct* policies per array (§3.5) — hence the trait.
///
/// [`TagArray`]: crate::TagArray
pub trait Replacer: Debug {
    /// Note that `(set, way)` was accessed (hit or after fill).
    fn touch(&mut self, set: usize, way: usize);

    /// Note that `(set, way)` was filled with a fresh entry.
    fn fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    /// Choose a victim way in a full `set`.
    fn victim(&mut self, set: usize) -> usize;
}

/// Least-recently-used replacement (the paper's policy for every array).
///
/// # Example
///
/// ```
/// use dg_cache::{Lru, Replacer};
/// let mut lru = Lru::new(1, 4);
/// for w in 0..4 { lru.touch(0, w); }
/// lru.touch(0, 0);          // way 0 becomes most recent
/// assert_eq!(lru.victim(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Lru {
    stamp: u64,
    last_use: Vec<u64>,
    ways: usize,
}

impl Lru {
    /// LRU state for `sets × ways` entries.
    pub fn new(sets: usize, ways: usize) -> Self {
        Lru { stamp: 0, last_use: vec![0; sets * ways], ways }
    }
}

impl Replacer for Lru {
    fn touch(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_use[set * self.ways + way] = self.stamp;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.last_use[base + w])
            .expect("non-zero associativity")
    }
}

/// First-in-first-out replacement: evicts the oldest *fill*, ignoring
/// hits.
#[derive(Debug, Clone)]
pub struct Fifo {
    stamp: u64,
    filled: Vec<u64>,
    ways: usize,
}

impl Fifo {
    /// FIFO state for `sets × ways` entries.
    pub fn new(sets: usize, ways: usize) -> Self {
        Fifo { stamp: 0, filled: vec![0; sets * ways], ways }
    }
}

impl Replacer for Fifo {
    fn touch(&mut self, _set: usize, _way: usize) {}

    fn fill(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.filled[set * self.ways + way] = self.stamp;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.filled[base + w])
            .expect("non-zero associativity")
    }
}

/// Pseudo-random replacement with a deterministic xorshift generator
/// (no external RNG state, reproducible across runs).
#[derive(Debug, Clone)]
pub struct RandomRepl {
    state: u64,
    ways: usize,
}

impl RandomRepl {
    /// Random replacement over `ways`-way sets, seeded deterministically.
    pub fn new(ways: usize, seed: u64) -> Self {
        RandomRepl { state: seed | 1, ways }
    }
}

impl Replacer for RandomRepl {
    fn touch(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % self.ways
    }
}

/// Static re-reference interval prediction (SRRIP, Jaleel et al.,
/// ISCA 2010 — cited as reference-based related work by the
/// Doppelgänger paper). Each way carries a 2-bit re-reference
/// prediction value (RRPV): fills insert at RRPV 2 ("long"), hits
/// promote to 0 ("near-immediate"), and the victim is any way at
/// RRPV 3, aging every way until one appears.
#[derive(Debug, Clone)]
pub struct Srrip {
    rrpv: Vec<u8>,
    ways: usize,
}

impl Srrip {
    /// Maximum RRPV for the 2-bit variant.
    const MAX: u8 = 3;
    /// Insertion RRPV ("long re-reference interval").
    const INSERT: u8 = 2;

    /// SRRIP state for `sets × ways` entries.
    pub fn new(sets: usize, ways: usize) -> Self {
        Srrip { rrpv: vec![Self::MAX; sets * ways], ways }
    }
}

impl Replacer for Srrip {
    fn touch(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = Self::INSERT;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] >= Self::MAX) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new(2, 4);
        for w in 0..4 {
            lru.fill(0, w);
        }
        lru.touch(0, 0);
        lru.touch(0, 2);
        assert_eq!(lru.victim(0), 1);
        lru.touch(0, 1);
        assert_eq!(lru.victim(0), 3);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        lru.fill(0, 0);
        lru.fill(1, 1);
        lru.fill(0, 1);
        lru.fill(1, 0);
        assert_eq!(lru.victim(0), 0);
        assert_eq!(lru.victim(1), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut fifo = Fifo::new(1, 3);
        fifo.fill(0, 0);
        fifo.fill(0, 1);
        fifo.fill(0, 2);
        fifo.touch(0, 0); // a hit must not refresh FIFO order
        assert_eq!(fifo.victim(0), 0);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = RandomRepl::new(8, 42);
        let mut b = RandomRepl::new(8, 42);
        for _ in 0..100 {
            let va = a.victim(0);
            assert_eq!(va, b.victim(0));
            assert!(va < 8);
        }
    }

    #[test]
    fn srrip_prefers_distant_rereference() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.fill(0, w); // all at RRPV 2
        }
        p.touch(0, 1); // way 1 promoted to 0
        p.touch(0, 3);
        // Victim must be one of the unpromoted ways (0 or 2).
        let v = p.victim(0);
        assert!(v == 0 || v == 2, "got {v}");
    }

    #[test]
    fn srrip_scan_resistance() {
        // A hot way keeps surviving a stream of single-use fills —
        // the property RRIP is built for.
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.fill(0, w);
        }
        p.touch(0, 0); // way 0 is hot
        for _ in 0..16 {
            let v = p.victim(0);
            assert_ne!(v, 0, "hot way evicted by the scan");
            p.fill(0, v); // the scan block lands with a long interval
            p.touch(0, 0); // and the hot way keeps getting hits
        }
    }

    #[test]
    fn srrip_ages_until_victim_found() {
        let mut p = Srrip::new(1, 2);
        p.fill(0, 0);
        p.fill(0, 1);
        p.touch(0, 0);
        p.touch(0, 1); // everyone at RRPV 0
        // Aging must still produce a victim.
        let v = p.victim(0);
        assert!(v < 2);
    }

    #[test]
    fn random_covers_multiple_ways() {
        let mut r = RandomRepl::new(4, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.victim(0)] = true;
        }
        assert!(seen.iter().all(|&s| s), "random policy should reach every way");
    }
}
