//! A conventional write-back, data-carrying cache.

use crate::{CacheGeometry, CacheStats, Lru, Replacer, TagArray};
use dg_mem::{BlockAddr, BlockData};
use dg_obs::{enabled, Hist64, Level};

/// Tag-side state of one valid cache line.
///
/// The 64-byte block contents live in a parallel per-slot data array
/// inside [`ConventionalCache`], mirroring the decoupled tag/data
/// organisation of real caches. Keeping `Line` to 16 bytes means a
/// tag-match scan walks a dense tag vector instead of striding over
/// full 80-byte lines — the innermost loop of every simulated access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    tag: u64,
    /// Whether the line has been written since it was filled.
    pub dirty: bool,
}

/// A line displaced from a cache by an insertion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evicted {
    /// The displaced block's address.
    pub addr: BlockAddr,
    /// Whether the block must be written back.
    pub dirty: bool,
    /// The displaced block's contents.
    pub data: BlockData,
}

/// A conventional set-associative, write-back, allocate-on-miss cache.
///
/// This models the paper's baseline 2 MB LLC, the 1 MB precise LLC
/// partition of the split design, and — with smaller geometries — the
/// private L1 and L2 levels (Table 1).
///
/// The cache is a passive container: it answers hits, accepts fills and
/// reports evictions. Miss handling (fetching from the next level) is
/// composed by the hierarchy in `dg-system`.
///
/// # Example
///
/// ```
/// use dg_cache::{CacheGeometry, ConventionalCache};
/// use dg_mem::{BlockAddr, BlockData};
///
/// let mut c = ConventionalCache::new(CacheGeometry::from_capacity(16 * 1024, 4));
/// let addr = BlockAddr(7);
/// assert!(c.read(addr).is_none());                       // cold miss
/// c.fill(addr, BlockData::zeroed());
/// assert!(c.read(addr).is_some());                       // now hits
/// ```
#[derive(Debug)]
pub struct ConventionalCache<R: Replacer = Lru> {
    array: TagArray<Line, R>,
    /// Block contents, one slot per `(set, way)` (`set * ways + way`);
    /// a slot is meaningful only while the matching tag entry is valid.
    data: Vec<BlockData>,
    /// Per-set MRU way hint checked before the full set scan. Purely an
    /// accelerator: a stale hint fails the tag compare and falls back,
    /// and because tags are unique within a set the predicted way is
    /// always the way the scan would find — observable behaviour is
    /// identical with or without the hint.
    mru: Vec<u32>,
    stats: CacheStats,
    /// Distribution of per-set occupancy sampled at each fill, recorded
    /// only at `Level::Metrics` and above. Observation-only: never read
    /// by the cache itself.
    occupancy: Hist64,
}

impl ConventionalCache {
    /// An empty cache with the given geometry and LRU replacement.
    pub fn new(geom: CacheGeometry) -> Self {
        ConventionalCache::with_policy(geom, Lru::new(geom.sets(), geom.ways()))
    }
}

impl<R: Replacer> ConventionalCache<R> {
    /// An empty cache with an explicit replacement policy (e.g.
    /// [`crate::Srrip`] or [`crate::Fifo`]).
    pub fn with_policy(geom: CacheGeometry, policy: R) -> Self {
        let data = vec![BlockData::zeroed(); geom.entries()];
        ConventionalCache {
            array: TagArray::with_policy(geom, policy),
            data,
            mru: vec![0; geom.sets()],
            stats: CacheStats::default(),
            occupancy: Hist64::new(),
        }
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.array.geometry().ways() + way
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.occupancy = Hist64::new();
    }

    /// Distribution of per-set occupancy at fill time (empty unless the
    /// run was profiled at `Level::Metrics` or above).
    pub fn occupancy_hist(&self) -> &Hist64 {
        &self.occupancy
    }

    /// Sample the occupancy of `set` after a fill. Out of line so the
    /// fill paths only pay the level check when profiling is off.
    #[cold]
    fn record_occupancy(&mut self, set: usize) {
        self.occupancy.record(self.array.occupancy(set) as u64);
    }

    /// Check the set's MRU way hint before committing to a full scan.
    #[inline]
    fn predict(&self, set: usize, tag: u64) -> Option<usize> {
        let way = self.mru[set] as usize;
        match self.array.get(set, way) {
            Some(l) if l.tag == tag => Some(way),
            _ => None,
        }
    }

    /// Locate `addr` without touching stats or LRU (shared access; the
    /// MRU hint is probed read-only).
    fn locate(&self, addr: BlockAddr) -> Option<usize> {
        let set = self.array.geometry().set_of(addr);
        let tag = self.array.geometry().tag_of(addr);
        self.predict(set, tag)
            .or_else(|| self.array.find_keyed(set, tag, |l| l.tag == tag))
    }

    /// Locate `addr`, refreshing the MRU way hint on a hit. No stats or
    /// LRU update. Returns `(set, way)` hits so callers skip recomputing
    /// the set index.
    #[inline]
    fn locate_mut(&mut self, addr: BlockAddr) -> Option<(usize, usize)> {
        let set = self.array.geometry().set_of(addr);
        let tag = self.array.geometry().tag_of(addr);
        if let Some(way) = self.predict(set, tag) {
            return Some((set, way));
        }
        // Plain scan, not the generation-stamped memo: the private
        // levels probe each block exactly once per access
        // (probe-then-fill, never probe-twice), so a memo never hits
        // here and its bookkeeping is pure per-probe overhead. The
        // repeat-lookup pattern the memo serves lives in the
        // Doppelgänger locate paths.
        let way = self.array.find_keyed(set, tag, |l| l.tag == tag)?;
        self.mru[set] = way as u32;
        Some((set, way))
    }

    /// Whether `addr` is present (no stats or LRU update).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.locate(addr).is_some()
    }

    /// Read `addr`: on a hit, returns the block and updates LRU/stats;
    /// on a miss, records the miss and returns `None`.
    pub fn read(&mut self, addr: BlockAddr) -> Option<BlockData> {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.touch(set, way);
                self.stats.record_hit();
                Some(self.data[self.slot(set, way)])
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Read bytes `[offset, offset+buf.len())` of a resident block into
    /// `buf`: on a hit, copies the bytes and updates LRU/stats exactly
    /// like [`Self::read`]; on a miss, records the miss and returns
    /// `false`. The hot path of every simulated load — avoids copying
    /// the full 64-byte block out of the array.
    pub fn read_bytes(&mut self, addr: BlockAddr, offset: usize, buf: &mut [u8]) -> bool {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.touch(set, way);
                self.stats.record_hit();
                let data = &self.data[self.slot(set, way)];
                buf.copy_from_slice(&data.as_bytes()[offset..offset + buf.len()]);
                true
            }
            None => {
                self.stats.record_miss();
                false
            }
        }
    }

    /// Write the full block at `addr`: on a hit, updates the data, sets
    /// the dirty bit and returns `true`; on a miss returns `false`
    /// (write-allocate is composed by the caller via [`Self::fill`]).
    pub fn write(&mut self, addr: BlockAddr, data: BlockData) -> bool {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.touch(set, way);
                self.stats.record_hit();
                self.array.get_mut(set, way).expect("located way is valid").dirty = true;
                let slot = self.slot(set, way);
                self.data[slot].copy_from(&data);
                true
            }
            None => {
                self.stats.record_miss();
                false
            }
        }
    }

    /// Update bytes `[offset, offset+bytes.len())` of a resident block,
    /// setting its dirty bit. Returns `false` on a miss (no stats).
    pub fn write_bytes(&mut self, addr: BlockAddr, offset: usize, bytes: &[u8]) -> bool {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.touch(set, way);
                self.array.get_mut(set, way).expect("located way is valid").dirty = true;
                let slot = self.slot(set, way);
                self.data[slot].as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
                true
            }
            None => false,
        }
    }

    /// Probe for a store: on a hit, updates LRU/stats exactly like
    /// [`Self::read`] and returns the line's `(set, way)` and current
    /// dirty bit for a follow-up [`Self::write_at`]; on a miss, records
    /// the miss and returns `None`. Splitting probe from write lets the
    /// caller run coherence actions in between without re-scanning the
    /// set (and skip them entirely when the dirty bit proves ownership).
    pub fn write_probe(&mut self, addr: BlockAddr) -> Option<(usize, usize, bool)> {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.touch(set, way);
                self.stats.record_hit();
                let dirty = self.array.get(set, way).expect("located way is valid").dirty;
                Some((set, way, dirty))
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Update bytes of the line at `(set, way)` — previously located by
    /// [`Self::write_probe`] for `addr` — setting its dirty bit. Same
    /// LRU/data effects as [`Self::write_bytes`] minus the set scan.
    pub fn write_at(&mut self, set: usize, way: usize, addr: BlockAddr, offset: usize, bytes: &[u8]) {
        let tag = self.array.geometry().tag_of(addr);
        self.array.touch(set, way);
        let line = self.array.get_mut(set, way).expect("probed way is valid");
        debug_assert_eq!(line.tag, tag, "line moved since probe");
        line.dirty = true;
        let slot = self.slot(set, way);
        self.data[slot].as_bytes_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Insert a clean copy of `addr` (a fill from the next level),
    /// evicting if needed.
    pub fn fill(&mut self, addr: BlockAddr, data: BlockData) -> Option<Evicted> {
        self.fill_with(addr, data, false)
    }

    /// Insert `addr` with an explicit dirty bit, evicting if needed.
    ///
    /// Fills must be misses: filling a resident block panics in debug
    /// builds (release builds skip the check — it would re-scan the set
    /// on every fill, and all hierarchy callers fill only after a miss).
    pub fn fill_with(&mut self, addr: BlockAddr, data: BlockData, dirty: bool) -> Option<Evicted> {
        self.fill_ref(addr, &data, dirty)
    }

    /// [`Self::fill_with`] taking the block by reference — the hierarchy
    /// fills the same data into several levels per miss, and this form
    /// copies the 64 bytes once into the chosen slot (and reads the old
    /// slot only when a victim is actually displaced).
    pub fn fill_ref(&mut self, addr: BlockAddr, data: &BlockData, dirty: bool) -> Option<Evicted> {
        debug_assert!(self.locate(addr).is_none(), "fill of a resident block");
        let geom = *self.array.geometry();
        let set = geom.set_of(addr);
        let line = Line { tag: geom.tag_of(addr), dirty };
        self.stats.record_insertion();
        let way = self.array.victim_way(set);
        let old = self.array.insert_at_keyed(set, way, line.tag, line);
        self.mru[set] = way as u32;
        let slot = self.slot(set, way);
        let out = old.map(|l| {
            self.stats.record_eviction(l.dirty);
            Evicted { addr: geom.block_addr(l.tag, set), dirty: l.dirty, data: self.data[slot] }
        });
        self.data[slot].copy_from(data);
        if enabled(Level::Metrics) {
            self.record_occupancy(set);
        }
        out
    }

    /// Clean fill for the private-level hot path: reports the victim's
    /// address and dirty bit, copying its 64 bytes into `victim_buf`
    /// only when dirty — clean victims need no writeback, so their data
    /// is never read. Same insertion/eviction stats and LRU effects as
    /// [`Self::fill`].
    pub fn fill_ref_lazy(
        &mut self,
        addr: BlockAddr,
        data: &BlockData,
        victim_buf: &mut BlockData,
    ) -> Option<(BlockAddr, bool)> {
        debug_assert!(self.locate(addr).is_none(), "fill of a resident block");
        let geom = *self.array.geometry();
        let set = geom.set_of(addr);
        let line = Line { tag: geom.tag_of(addr), dirty: false };
        self.stats.record_insertion();
        let way = self.array.victim_way(set);
        let old = self.array.insert_at_keyed(set, way, line.tag, line);
        self.mru[set] = way as u32;
        let slot = self.slot(set, way);
        let out = old.map(|l| {
            self.stats.record_eviction(l.dirty);
            if l.dirty {
                victim_buf.copy_from(&self.data[slot]);
            }
            (geom.block_addr(l.tag, set), l.dirty)
        });
        self.data[slot].copy_from(data);
        if enabled(Level::Metrics) {
            self.record_occupancy(set);
        }
        out
    }

    /// Remove `addr` if present, returning its final state (used for
    /// back-invalidations and inclusion enforcement).
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<Evicted> {
        let (set, way) = self.locate_mut(addr)?;
        let line = self.array.invalidate(set, way).expect("located way is valid");
        self.stats.record_invalidation();
        Some(Evicted { addr, dirty: line.dirty, data: self.data[self.slot(set, way)] })
    }

    /// The resident block's data, if present (no stats or LRU update).
    pub fn peek(&self, addr: BlockAddr) -> Option<&BlockData> {
        let set = self.array.geometry().set_of(addr);
        self.locate(addr).map(|way| &self.data[self.slot(set, way)])
    }

    /// The resident block's data and dirty bit, if present (no stats or
    /// LRU update). Used by coherence to pull a modified copy.
    pub fn peek_line(&self, addr: BlockAddr) -> Option<(&BlockData, bool)> {
        let set = self.array.geometry().set_of(addr);
        self.locate(addr).map(|way| {
            let dirty = self.array.get(set, way).expect("valid").dirty;
            (&self.data[self.slot(set, way)], dirty)
        })
    }

    /// Clear a resident block's dirty bit (an M → S downgrade after the
    /// modified copy was written back). Returns `false` on a miss.
    pub fn clear_dirty(&mut self, addr: BlockAddr) -> bool {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.get_mut(set, way).expect("valid").dirty = false;
                true
            }
            None => false,
        }
    }

    /// Mark a resident block dirty (e.g. on an upper-level writeback hit).
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> bool {
        match self.locate_mut(addr) {
            Some((set, way)) => {
                self.array.get_mut(set, way).expect("valid").dirty = true;
                true
            }
            None => false,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Iterate over resident blocks as `(addr, dirty, &data)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, bool, &BlockData)> {
        let geom = *self.array.geometry();
        self.array.iter().map(move |(set, way, line)| {
            let slot = set * geom.ways() + way;
            (geom.block_addr(line.tag, set), line.dirty, &self.data[slot])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_mem::ElemType;

    fn tiny() -> ConventionalCache {
        // 2 sets x 2 ways.
        ConventionalCache::new(CacheGeometry::from_entries(4, 2))
    }

    fn blk(v: f64) -> BlockData {
        BlockData::from_values(ElemType::F64, &[v])
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.read(BlockAddr(0)).is_none());
        c.fill(BlockAddr(0), blk(1.0));
        assert_eq!(c.read(BlockAddr(0)), Some(blk(1.0)));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn write_hit_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        assert!(c.write(BlockAddr(0), blk(2.0)));
        // Fill two more blocks mapping to set 0 (even block addresses).
        c.fill(BlockAddr(2), blk(3.0));
        let ev = c.fill(BlockAddr(4), blk(4.0)).expect("set 0 is full");
        assert_eq!(ev.addr, BlockAddr(0));
        assert!(ev.dirty);
        assert_eq!(ev.data, blk(2.0));
    }

    #[test]
    fn clean_eviction_not_dirty() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        c.fill(BlockAddr(2), blk(2.0));
        let ev = c.fill(BlockAddr(4), blk(3.0)).unwrap();
        assert!(!ev.dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 0);
    }

    #[test]
    fn write_miss_returns_false() {
        let mut c = tiny();
        assert!(!c.write(BlockAddr(0), blk(1.0)));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_bytes_partial_update() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        let newv = 9.0f64.to_le_bytes();
        assert!(c.write_bytes(BlockAddr(0), 8, &newv));
        let got = c.peek(BlockAddr(0)).unwrap();
        assert_eq!(got.elem(ElemType::F64, 0), 1.0);
        assert_eq!(got.elem(ElemType::F64, 1), 9.0);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        c.write(BlockAddr(0), blk(2.0));
        let inv = c.invalidate(BlockAddr(0)).unwrap();
        assert!(inv.dirty);
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.invalidate(BlockAddr(0)).is_none());
    }

    #[test]
    #[cfg(debug_assertions)] // the double-fill guard is debug-only
    #[should_panic(expected = "fill of a resident block")]
    fn double_fill_rejected() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        c.fill(BlockAddr(0), blk(2.0));
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        c.fill(BlockAddr(0), blk(1.0));
        c.fill(BlockAddr(2), blk(2.0));
        // Touch block 0 so block 2 is LRU.
        c.read(BlockAddr(0));
        let ev = c.fill(BlockAddr(4), blk(3.0)).unwrap();
        assert_eq!(ev.addr, BlockAddr(2));
    }

    #[test]
    fn iter_blocks_round_trips_addresses() {
        let mut c = tiny();
        c.fill(BlockAddr(5), blk(1.0));
        c.fill(BlockAddr(10), blk(2.0));
        let mut addrs: Vec<u64> = c.iter_blocks().map(|(a, _, _)| a.0).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![5, 10]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn srrip_cache_resists_scans_better_than_lru() {
        use crate::Srrip;
        let geom = CacheGeometry::from_entries(8, 8); // one 8-way set
        let mut lru = ConventionalCache::new(geom);
        let mut srrip = ConventionalCache::with_policy(geom, Srrip::new(1, 8));

        // A hot block re-referenced between one-shot scan blocks.
        let hot = BlockAddr(0);
        let run = |c: &mut dyn FnMut(BlockAddr) -> bool| -> u64 {
            let mut hot_hits = 0;
            for i in 1..200u64 {
                if c(hot) {
                    hot_hits += 1;
                }
                c(BlockAddr(i)); // scan block, never reused
            }
            hot_hits
        };
        let mut drive_lru = |addr: BlockAddr| -> bool {
            if lru.read(addr).is_some() {
                true
            } else {
                lru.fill(addr, BlockData::zeroed());
                false
            }
        };
        let lru_hits = run(&mut drive_lru);
        let mut drive_srrip = |addr: BlockAddr| -> bool {
            if srrip.read(addr).is_some() {
                true
            } else {
                srrip.fill(addr, BlockData::zeroed());
                false
            }
        };
        let srrip_hits = run(&mut drive_srrip);
        assert!(
            srrip_hits >= lru_hits,
            "SRRIP ({srrip_hits}) should match or beat LRU ({lru_hits}) on a scan mix"
        );
        assert!(srrip_hits > 150, "hot block should mostly hit under SRRIP: {srrip_hits}");
    }

    #[test]
    fn fifo_cache_works_end_to_end() {
        use crate::Fifo;
        let geom = CacheGeometry::from_entries(4, 2);
        let mut c = ConventionalCache::with_policy(geom, Fifo::new(2, 2));
        c.fill(BlockAddr(0), blk(1.0));
        c.fill(BlockAddr(2), blk(2.0));
        c.read(BlockAddr(0)); // a hit must not refresh FIFO order
        let ev = c.fill(BlockAddr(4), blk(3.0)).unwrap();
        assert_eq!(ev.addr, BlockAddr(0), "FIFO evicts the oldest fill");
    }

    #[test]
    fn mark_dirty_on_resident() {
        let mut c = tiny();
        c.fill(BlockAddr(1), blk(1.0));
        assert!(c.mark_dirty(BlockAddr(1)));
        assert!(!c.mark_dirty(BlockAddr(3)));
        let ev = c.invalidate(BlockAddr(1)).unwrap();
        assert!(ev.dirty);
    }
}
