//! Reuse-distance (LRU stack) analysis.
//!
//! Mattson's classic stack algorithm: for each reference, the *reuse
//! distance* is the number of distinct blocks touched since the last
//! reference to the same block. A fully-associative LRU cache of
//! capacity `C` hits exactly the references with distance `< C`, so one
//! profile predicts the miss curve for **every** capacity at once —
//! which is how an architect decides whether a working set will fit the
//! Doppelgänger data array before running a full simulation.

use dg_mem::BlockAddr;
use std::collections::HashMap;

/// A reuse-distance profile of one reference stream.
///
/// # Example
///
/// ```
/// use dg_cache::ReuseProfile;
/// use dg_mem::BlockAddr;
///
/// // A cyclic scan of 4 blocks: every non-cold reference has reuse
/// // distance 3, so it fits in a 4-block cache but not a 2-block one.
/// let stream: Vec<BlockAddr> = (0..20).map(|i| BlockAddr(i % 4)).collect();
/// let p = ReuseProfile::from_stream(stream);
/// assert_eq!(p.cold_misses(), 4);
/// assert!(p.hit_rate(4) > 0.75);
/// assert_eq!(p.hit_rate(2), 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of references with reuse distance `d`.
    histogram: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profile a whole reference stream.
    pub fn from_stream(stream: impl IntoIterator<Item = BlockAddr>) -> Self {
        let mut p = ReuseProfile::new();
        let mut stack: Vec<BlockAddr> = Vec::new();
        let mut position: HashMap<BlockAddr, ()> = HashMap::new();
        for addr in stream {
            if let std::collections::hash_map::Entry::Vacant(e) = position.entry(addr) {
                p.record_cold();
                e.insert(());
                stack.push(addr);
            } else {
                // Find the depth (0 = most recent) and move to top.
                let depth = stack
                    .iter()
                    .rev()
                    .position(|&a| a == addr)
                    .expect("tracked block is on the stack");
                p.record(depth as u64);
                let idx = stack.len() - 1 - depth;
                stack.remove(idx);
                stack.push(addr);
            }
        }
        p
    }

    /// Record one reference with reuse distance `d`.
    pub fn record(&mut self, d: u64) {
        let idx = d as usize;
        if self.histogram.len() <= idx {
            self.histogram.resize(idx + 1, 0);
        }
        self.histogram[idx] += 1;
        self.total += 1;
    }

    /// Record a cold (first-touch) reference.
    pub fn record_cold(&mut self) {
        self.cold += 1;
        self.total += 1;
    }

    /// Total references profiled.
    pub fn references(&self) -> u64 {
        self.total
    }

    /// Cold (compulsory) misses — distinct blocks touched.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Predicted hit rate of a fully-associative LRU cache holding
    /// `capacity_blocks` blocks: the fraction of references with reuse
    /// distance below the capacity.
    pub fn hit_rate(&self, capacity_blocks: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .take(capacity_blocks)
            .sum();
        hits as f64 / self.total as f64
    }

    /// Predicted misses for a capacity (cold + capacity misses).
    pub fn misses(&self, capacity_blocks: usize) -> u64 {
        self.total - (self.hit_rate(capacity_blocks) * self.total as f64).round() as u64
    }

    /// The full miss curve over the given capacities.
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, 1.0 - self.hit_rate(c)))
            .collect()
    }

    /// The smallest capacity achieving at least `target` hit rate
    /// (`None` if even an infinite cache cannot — cold misses dominate).
    pub fn capacity_for_hit_rate(&self, target: f64) -> Option<usize> {
        let max = self.histogram.len() + 1;
        (1..=max).find(|&c| self.hit_rate(c) >= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(blocks: &[u64]) -> Vec<BlockAddr> {
        blocks.iter().map(|&b| BlockAddr(b)).collect()
    }

    #[test]
    fn cold_misses_count_distinct_blocks() {
        let p = ReuseProfile::from_stream(stream(&[1, 2, 3, 1, 2, 3]));
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.references(), 6);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let p = ReuseProfile::from_stream(stream(&[5, 5, 5]));
        assert_eq!(p.cold_misses(), 1);
        // Two references at distance 0: hit in any cache with >=1 block.
        assert!((p.hit_rate(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cyclic_scan_distances_equal_universe_minus_one() {
        let refs: Vec<u64> = (0..30).map(|i| i % 5).collect();
        let p = ReuseProfile::from_stream(stream(&refs));
        assert_eq!(p.cold_misses(), 5);
        // 25 reuses, all at distance 4.
        assert_eq!(p.hit_rate(4), 0.0);
        assert!((p.hit_rate(5) - 25.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let refs = dg_mem::synth::zipfian(dg_mem::Addr(0), 256, 5000, 0.9, 7);
        let p = ReuseProfile::from_stream(refs.iter().map(|a| a.addr.block()));
        let curve = p.miss_curve(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "miss curve must not increase: {curve:?}");
        }
        // An infinite cache leaves only cold misses.
        let only_cold = p.cold_misses() as f64 / p.references() as f64;
        assert!((curve.last().unwrap().1 - only_cold).abs() < 1e-9);
    }

    #[test]
    fn capacity_for_hit_rate_finds_the_knee() {
        let refs: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let p = ReuseProfile::from_stream(stream(&refs));
        // 90/100 references reusable, all at distance 9.
        assert_eq!(p.capacity_for_hit_rate(0.9), Some(10));
        assert_eq!(p.capacity_for_hit_rate(0.95), None);
    }

    #[test]
    fn prediction_matches_a_real_lru_cache() {
        // Cross-check against an actual fully-associative LRU model.
        use std::collections::VecDeque;
        let refs = dg_mem::synth::uniform_random(dg_mem::Addr(0), 64, 2000, 11);
        let blocks: Vec<BlockAddr> = refs.iter().map(|a| a.addr.block()).collect();
        let p = ReuseProfile::from_stream(blocks.clone());
        for capacity in [4usize, 16, 48] {
            let mut lru: VecDeque<BlockAddr> = VecDeque::new();
            let mut hits = 0u64;
            for &b in &blocks {
                if let Some(pos) = lru.iter().position(|&x| x == b) {
                    hits += 1;
                    lru.remove(pos);
                } else if lru.len() == capacity {
                    lru.pop_front();
                }
                lru.push_back(b);
            }
            let measured = hits as f64 / blocks.len() as f64;
            let predicted = p.hit_rate(capacity);
            assert!(
                (measured - predicted).abs() < 1e-12,
                "capacity {capacity}: predicted {predicted} vs measured {measured}"
            );
        }
    }

    #[test]
    fn empty_profile() {
        let p = ReuseProfile::new();
        assert_eq!(p.hit_rate(100), 0.0);
        assert_eq!(p.references(), 0);
        assert_eq!(p.capacity_for_hit_rate(0.5), None);
    }
}
