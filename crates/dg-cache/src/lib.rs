//! Cache substrate for the Doppelgänger reproduction.
//!
//! Everything a conventional multi-level cache hierarchy needs, built
//! from scratch:
//!
//! * [`CacheGeometry`] — size / associativity / block-size arithmetic.
//! * [`Replacer`] and implementations ([`Lru`], [`Fifo`], [`RandomRepl`],
//!   [`Srrip`]) — pluggable per-set replacement policies.
//! * [`TagArray`] — a generic set-associative array of caller-defined
//!   entries with replacement-policy bookkeeping.
//! * [`ConventionalCache`] — a data-carrying write-back cache used for
//!   the private L1/L2 levels, the precise LLC partition, and the
//!   baseline 2 MB LLC.
//! * [`CompressedCache`] — a Touché-style compressed array (superblock
//!   tags, segment-granular BΔI data) backing `LlcKind::Compressed`.
//! * [`Sharers`] — directory sharer sets for MSI coherence at an
//!   inclusive LLC.
//! * [`WritebackBuffer`] — the LLC's buffer of pending DRAM writes.
//! * [`CacheStats`] — hit/miss/eviction/writeback accounting.
//!
//! The full hierarchy orchestration (4 cores, L1→L2→LLC→memory, MSI,
//! timing) lives in `dg-system`; the Doppelgänger LLC itself is in the
//! `doppelganger` crate. Both are clients of this substrate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod cache;
mod compressed;
mod geometry;
mod replacement;
pub mod reuse;
mod sharers;
mod stats;
mod writeback;

pub use array::TagArray;
pub use cache::{ConventionalCache, Evicted, Line};
pub use compressed::{CompStats, CompressedCache, CompressedConfig};
pub use geometry::{CacheGeometry, GeometryError};
pub use replacement::{Fifo, Lru, RandomRepl, Replacer, Srrip};
pub use reuse::ReuseProfile;
pub use sharers::Sharers;
pub use stats::CacheStats;
pub use writeback::WritebackBuffer;
