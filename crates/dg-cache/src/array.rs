//! Generic set-associative array with replacement bookkeeping.

use crate::{CacheGeometry, Lru, Replacer};

/// A set-associative array of caller-defined entries.
///
/// `TagArray` owns placement (set × way grid), validity, and the
/// replacement policy; the meaning of an entry (`E`) is up to the
/// caller. The conventional cache, the Doppelgänger tag array, and the
/// MTag/data array are all built on it.
///
/// # Example
///
/// ```
/// use dg_cache::{CacheGeometry, TagArray};
/// let mut arr: TagArray<u64> = TagArray::new(CacheGeometry::from_entries(8, 2));
/// let set = 0;
/// assert!(arr.find(set, |&e| e == 99).is_none());
/// let (way, evicted) = arr.insert(set, 99);
/// assert!(evicted.is_none());
/// assert_eq!(arr.find(set, |&e| e == 99), Some(way));
/// ```
#[derive(Debug)]
pub struct TagArray<E, R: Replacer = Lru> {
    geom: CacheGeometry,
    entries: Vec<Option<E>>,
    policy: R,
    /// Valid entries per set, maintained on insert/invalidate so that
    /// victim selection in a full set (the steady state of every hot
    /// cache) skips the scan for an invalid way.
    occ: Vec<u16>,
    /// Valid entries in the whole array (O(1) `len`).
    valid: usize,
    /// Decoupled key lane: one `u64` match key per slot, written by
    /// [`TagArray::insert_at_keyed`]. [`TagArray::find_keyed`] scans
    /// this dense lane (8 bytes per way) instead of striding over the
    /// full entries, and re-verifies every candidate against the
    /// caller's predicate — so stale keys left behind by `invalidate`
    /// or key collisions can never change the result.
    keys: Vec<u64>,
    /// Per-set key-generation stamp: bumped by every operation that can
    /// change a set's entries (or hand out `&mut` access to them). A
    /// set whose stamp is unchanged since the last keyed scan is
    /// guaranteed to produce the same scan result, which lets
    /// [`TagArray::find_keyed_cached`] skip the rescan entirely.
    gens: Vec<u64>,
    /// Memo of the most recent [`TagArray::find_keyed_cached`] scan:
    /// `(set, key, gen at scan time, found way or -1)`. `memo_set ==
    /// u32::MAX` means empty.
    memo_set: u32,
    memo_key: u64,
    memo_gen: u64,
    memo_way: i32,
    /// Cached-scan counters: full scans run vs. scans skipped via the
    /// generation memo (observability only; see `scan_counters`).
    keyed_scans: u64,
    keyed_scan_skips: u64,
}

impl<E> TagArray<E, Lru> {
    /// An empty array with LRU replacement (the paper's default).
    pub fn new(geom: CacheGeometry) -> Self {
        let policy = Lru::new(geom.sets(), geom.ways());
        TagArray::with_policy(geom, policy)
    }
}

impl<E, R: Replacer> TagArray<E, R> {
    /// An empty array with an explicit replacement policy.
    pub fn with_policy(geom: CacheGeometry, policy: R) -> Self {
        let mut entries = Vec::new();
        entries.resize_with(geom.entries(), || None);
        TagArray {
            occ: vec![0; geom.sets()],
            valid: 0,
            keys: vec![0; geom.entries()],
            gens: vec![0; geom.sets()],
            memo_set: u32::MAX,
            memo_key: 0,
            memo_gen: 0,
            memo_way: -1,
            keyed_scans: 0,
            keyed_scan_skips: 0,
            geom,
            entries,
            policy,
        }
    }

    /// Record that `set`'s entries may have changed: any memoized scan
    /// of the set is no longer trustworthy.
    #[inline]
    fn bump_gen(&mut self, set: usize) {
        self.gens[set] += 1;
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.geom.sets() && way < self.geom.ways());
        set * self.geom.ways() + way
    }

    /// The entry at `(set, way)`, if valid.
    pub fn get(&self, set: usize, way: usize) -> Option<&E> {
        self.entries[self.slot(set, way)].as_ref()
    }

    /// Mutable access to the entry at `(set, way)`, if valid.
    ///
    /// Does **not** update replacement state; call [`TagArray::touch`]
    /// if the mutation models an access.
    pub fn get_mut(&mut self, set: usize, way: usize) -> Option<&mut E> {
        let slot = self.slot(set, way);
        // The caller can rewrite the entry through this borrow, so any
        // memoized scan of the set is conservatively invalidated.
        self.bump_gen(set);
        self.entries[slot].as_mut()
    }

    /// Find the way in `set` whose entry satisfies `pred`.
    ///
    /// Does not touch replacement state (lookups that should count as
    /// uses must call [`TagArray::touch`]).
    pub fn find(&self, set: usize, pred: impl Fn(&E) -> bool) -> Option<usize> {
        // One bounds check for the whole set instead of one per way —
        // this is the innermost loop of every simulated memory access.
        let ways = self.geom.ways();
        let base = set * ways;
        self.entries[base..base + ways]
            .iter()
            .position(|e| e.as_ref().is_some_and(&pred))
    }

    /// Find the way in `set` whose entry was inserted with `key` and
    /// satisfies `pred`.
    ///
    /// Fast-path variant of [`TagArray::find`] for arrays whose entries
    /// are inserted via [`TagArray::insert_at_keyed`]: the scan strides
    /// over the dense 8-byte key lane instead of the full entries, and
    /// only candidate ways (key match) load the entry to run `pred`.
    /// `pred` remains the source of truth, so the result is identical
    /// to `find` as long as every entry `pred` would accept carries
    /// `key` in the key lane (the keyed-insert invariant).
    pub fn find_keyed(&self, set: usize, key: u64, pred: impl Fn(&E) -> bool) -> Option<usize> {
        let ways = self.geom.ways();
        let base = set * ways;
        let keys = &self.keys[base..base + ways];
        // Vector compare of the whole key lane at once; the match mask
        // is consumed lowest-way-first, so hit order (and therefore the
        // returned way) is identical to the scalar scan.
        let mut mask = dg_simd::match_mask(keys, key);
        while mask != 0 {
            let w = mask.trailing_zeros() as usize;
            if let Some(e) = self.entries[base + w].as_ref() {
                if pred(e) {
                    return Some(w);
                }
            }
            mask &= mask - 1;
        }
        None
    }

    /// [`TagArray::find_keyed`] with a single-entry scan memo.
    ///
    /// If the most recent cached scan was for this same `(set, key)` and
    /// the set's generation stamp has not moved since, the memoized way
    /// is returned without rescanning the key lane or re-running `pred`.
    /// `pred` must therefore be pure with respect to the entries: for a
    /// fixed set state it must always accept the same entries (true of
    /// every tag-match predicate in the simulator). Mutating operations
    /// (`insert*`, `invalidate`, `clear`, `get_mut`, `iter_mut`) bump
    /// the stamp, so a stale memo can never be returned.
    pub fn find_keyed_cached(
        &mut self,
        set: usize,
        key: u64,
        pred: impl Fn(&E) -> bool,
    ) -> Option<usize> {
        let gen = self.gens[set];
        if self.memo_set == set as u32 && self.memo_key == key && self.memo_gen == gen {
            self.keyed_scan_skips += 1;
            return usize::try_from(self.memo_way).ok();
        }
        self.keyed_scans += 1;
        let way = self.find_keyed(set, key, pred);
        self.memo_set = set as u32;
        self.memo_key = key;
        self.memo_gen = gen;
        self.memo_way = way.map_or(-1, |w| w as i32);
        way
    }

    /// Cached-scan counters: `(full scans run, scans skipped via memo)`.
    pub fn scan_counters(&self) -> (u64, u64) {
        (self.keyed_scans, self.keyed_scan_skips)
    }

    /// Insert `entry` at an explicit `(set, way)` and record `key` in
    /// the key lane for [`TagArray::find_keyed`], returning the
    /// displaced entry (if any).
    pub fn insert_at_keyed(&mut self, set: usize, way: usize, key: u64, entry: E) -> Option<E> {
        let slot = self.slot(set, way);
        self.bump_gen(set);
        self.keys[slot] = key;
        let old = self.entries[slot].replace(entry);
        if old.is_none() {
            self.occ[set] += 1;
            self.valid += 1;
        }
        self.policy.fill(set, way);
        old
    }

    /// Record a use of `(set, way)` for the replacement policy.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.policy.touch(set, way);
    }

    /// The way that would be victimized by the next insertion into a
    /// full `set` (an invalid way if one exists).
    pub fn victim_way(&mut self, set: usize) -> usize {
        if usize::from(self.occ[set]) == self.geom.ways() {
            return self.policy.victim(set);
        }
        (0..self.geom.ways())
            .find(|&w| self.get(set, w).is_none())
            .expect("occupancy below associativity implies an invalid way")
    }

    /// Insert `entry` into `set`, evicting if the set is full.
    ///
    /// Returns the chosen way and the displaced entry (if any). The new
    /// entry becomes the most recently used.
    pub fn insert(&mut self, set: usize, entry: E) -> (usize, Option<E>) {
        let way = self.victim_way(set);
        (way, self.insert_at(set, way, entry))
    }

    /// Insert `entry` at an explicit `(set, way)`, returning the
    /// displaced entry (if any).
    pub fn insert_at(&mut self, set: usize, way: usize, entry: E) -> Option<E> {
        let slot = self.slot(set, way);
        self.bump_gen(set);
        let old = self.entries[slot].replace(entry);
        if old.is_none() {
            self.occ[set] += 1;
            self.valid += 1;
        }
        self.policy.fill(set, way);
        old
    }

    /// Invalidate `(set, way)`, returning the removed entry.
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<E> {
        let slot = self.slot(set, way);
        self.bump_gen(set);
        let old = self.entries[slot].take();
        if old.is_some() {
            self.occ[set] -= 1;
            self.valid -= 1;
        }
        old
    }

    /// Number of valid entries in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        usize::from(self.occ[set])
    }

    /// Number of valid entries in the whole array.
    pub fn len(&self) -> usize {
        self.valid
    }

    /// Whether the array holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Iterate over all valid entries as `(set, way, &entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &E)> {
        let ways = self.geom.ways();
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| e.as_ref().map(|e| (i / ways, i % ways, e)))
    }

    /// Iterate mutably over all valid entries as `(set, way, &mut entry)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, usize, &mut E)> {
        // Every set's entries are reachable through this iterator.
        self.gens.iter_mut().for_each(|g| *g += 1);
        let ways = self.geom.ways();
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, e)| e.as_mut().map(|e| (i / ways, i % ways, e)))
    }

    /// Remove every entry, leaving replacement state untouched.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.occ.iter_mut().for_each(|o| *o = 0);
        self.gens.iter_mut().for_each(|g| *g += 1);
        self.valid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray<u64> {
        TagArray::new(CacheGeometry::from_entries(8, 4)) // 2 sets x 4 ways
    }

    #[test]
    fn insert_prefers_invalid_ways() {
        let mut a = small();
        let (w0, e0) = a.insert(0, 10);
        let (w1, e1) = a.insert(0, 11);
        assert_ne!(w0, w1);
        assert!(e0.is_none() && e1.is_none());
        assert_eq!(a.occupancy(0), 2);
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut a = small();
        for v in 0..4 {
            a.insert(0, v);
        }
        // Touch 0 so entry value 0 is MRU; LRU is value 1.
        let way0 = a.find(0, |&e| e == 0).unwrap();
        a.touch(0, way0);
        let (_, evicted) = a.insert(0, 99);
        assert_eq!(evicted, Some(1));
        assert_eq!(a.occupancy(0), 4);
    }

    #[test]
    fn find_and_get() {
        let mut a = small();
        a.insert(1, 42);
        let w = a.find(1, |&e| e == 42).unwrap();
        assert_eq!(a.get(1, w), Some(&42));
        assert!(a.find(0, |&e| e == 42).is_none());
    }

    #[test]
    fn invalidate_frees_way() {
        let mut a = small();
        let (w, _) = a.insert(0, 5);
        assert_eq!(a.invalidate(0, w), Some(5));
        assert_eq!(a.invalidate(0, w), None);
        assert_eq!(a.occupancy(0), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn iter_reports_positions() {
        let mut a = small();
        a.insert(0, 1);
        a.insert(1, 2);
        let mut items: Vec<(usize, u64)> = a.iter().map(|(s, _, &e)| (s, e)).collect();
        items.sort_unstable();
        assert_eq!(items, vec![(0, 1), (1, 2)]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_mut_mutates_in_place() {
        let mut a = small();
        a.insert(0, 1);
        for (_, _, e) in a.iter_mut() {
            *e += 100;
        }
        assert!(a.find(0, |&e| e == 101).is_some());
    }

    #[test]
    fn insert_at_explicit_position() {
        let mut a = small();
        assert!(a.insert_at(1, 3, 7).is_none());
        assert_eq!(a.get(1, 3), Some(&7));
        assert_eq!(a.insert_at(1, 3, 8), Some(7));
    }

    #[test]
    fn clear_empties() {
        let mut a = small();
        a.insert(0, 1);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn mutation_via_get_mut() {
        let mut a = small();
        let (w, _) = a.insert(0, 1);
        *a.get_mut(0, w).unwrap() = 9;
        assert_eq!(a.get(0, w), Some(&9));
    }

    #[test]
    fn find_keyed_matches_linear_scan_on_stale_and_colliding_keys() {
        let mut a = small();
        // Two entries inserted with the same key lane value; pred must
        // disambiguate, and the lowest matching way must win.
        a.insert_at_keyed(0, 1, 7, 71);
        a.insert_at_keyed(0, 3, 7, 73);
        assert_eq!(a.find_keyed(0, 7, |&e| e == 73), Some(3));
        assert_eq!(a.find_keyed(0, 7, |&e| e == 71), Some(1));
        assert_eq!(a.find_keyed(0, 7, |_| true), Some(1));
        // Invalidate leaves the key lane stale; pred re-verification
        // keeps the stale slot from matching.
        a.invalidate(0, 1);
        assert_eq!(a.find_keyed(0, 7, |&e| e == 71), None);
        assert_eq!(a.find_keyed(0, 7, |_| true), Some(3));
        assert_eq!(a.find_keyed(0, 8, |_| true), None);
    }

    #[test]
    fn cached_scan_skips_until_set_mutates() {
        let mut a = small();
        a.insert_at_keyed(0, 0, 7, 70);
        // First cached scan runs in full and memoizes the hit.
        assert_eq!(a.find_keyed_cached(0, 7, |&e| e == 70), Some(0));
        assert_eq!(a.scan_counters(), (1, 0));
        // Repeat on the unchanged set: memo hit, no rescan.
        assert_eq!(a.find_keyed_cached(0, 7, |&e| e == 70), Some(0));
        assert_eq!(a.scan_counters(), (1, 1));
        // A different key on the same set must rescan.
        assert_eq!(a.find_keyed_cached(0, 9, |_| true), None);
        assert_eq!(a.scan_counters(), (2, 1));
        // Misses memoize too.
        assert_eq!(a.find_keyed_cached(0, 9, |_| true), None);
        assert_eq!(a.scan_counters(), (2, 2));
        // Any mutation of the set invalidates the memo.
        assert_eq!(a.find_keyed_cached(0, 7, |&e| e == 70), Some(0));
        *a.get_mut(0, 0).unwrap() = 71;
        assert_eq!(a.find_keyed_cached(0, 7, |&e| e == 71), Some(0));
        assert_eq!(a.scan_counters(), (4, 2));
        a.invalidate(0, 0);
        assert_eq!(a.find_keyed_cached(0, 7, |_| true), None);
        assert_eq!(a.scan_counters(), (5, 2));
    }
}
