//! Cache statistics accounting.

use dg_obs::Snapshot;
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by a cache structure.
///
/// All counters are monotonically increasing; derive rates
/// ([`CacheStats::hit_rate`], [`CacheStats::miss_rate`]) on demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that did not find the block.
    pub misses: u64,
    /// Blocks inserted (fills).
    pub insertions: u64,
    /// Blocks displaced by fills.
    pub evictions: u64,
    /// Displaced blocks that required a writeback.
    pub dirty_evictions: u64,
    /// Blocks removed by external invalidations (coherence or
    /// inclusion back-invalidations).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit (0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Fraction of lookups that missed (0 if no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Misses per thousand instructions for an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Record a hit.
    #[inline]
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Record a miss.
    #[inline]
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Record a fill.
    #[inline]
    pub fn record_insertion(&mut self) {
        self.insertions += 1;
    }

    /// Record an eviction, noting whether it was dirty.
    #[inline]
    pub fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.dirty_evictions += 1;
        }
    }

    /// Record an external invalidation.
    #[inline]
    pub fn record_invalidation(&mut self) {
        self.invalidations += 1;
    }
}

impl Snapshot for CacheStats {
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits),
            ("misses", self.misses),
            ("insertions", self.insertions),
            ("evictions", self.evictions),
            ("dirty_evictions", self.dirty_evictions),
            ("invalidations", self.invalidations),
            ("accesses", self.accesses()),
        ]
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.invalidations += rhs.invalidations;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} (hit rate {:.1}%), evictions={} ({} dirty), inval={}",
            self.accesses(),
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.dirty_evictions,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.miss_rate(), 0.25);
    }

    #[test]
    fn mpki_per_thousand() {
        let mut s = CacheStats::default();
        for _ in 0..12 {
            s.record_miss();
        }
        assert_eq!(s.mpki(1000), 12.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn eviction_tracks_dirtiness() {
        let mut s = CacheStats::default();
        s.record_eviction(true);
        s.record_eviction(false);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.dirty_evictions, 1);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = CacheStats { hits: 1, misses: 2, ..Default::default() };
        let b = CacheStats { hits: 10, invalidations: 5, ..Default::default() };
        a += b;
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 2);
        assert_eq!(a.invalidations, 5);
    }

    #[test]
    fn display_nonempty() {
        assert!(CacheStats::default().to_string().contains("accesses=0"));
    }
}
