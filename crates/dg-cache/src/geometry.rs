//! Cache size / associativity / indexing arithmetic.

use dg_mem::{BlockAddr, BLOCK_BYTES};
use std::fmt;

/// The physical organization of a set-associative structure.
///
/// # Example
///
/// ```
/// use dg_cache::CacheGeometry;
/// // The paper's baseline LLC: 2 MB, 16-way, 64 B blocks (Table 1).
/// let g = CacheGeometry::from_capacity(2 * 1024 * 1024, 16);
/// assert_eq!(g.entries(), 32 * 1024);   // 32 K blocks (Table 3)
/// assert_eq!(g.sets(), 2048);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Geometry from a data capacity in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two,
    /// or if `ways` is zero.
    pub fn from_capacity(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let entries = capacity_bytes / BLOCK_BYTES;
        assert!(entries.is_multiple_of(ways), "capacity must be a whole number of sets");
        Self::from_entries(entries, ways)
    }

    /// Geometry from a total entry count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power-of-two multiple of
    /// `ways`.
    pub fn from_entries(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(entries >= ways && entries.is_multiple_of(ways), "entries must be a multiple of ways");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry { sets, ways }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity (ways per set).
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entries (sets × ways).
    #[inline]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Data capacity in bytes if every entry holds one 64 B block.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.entries() * BLOCK_BYTES
    }

    /// Set index for a block address.
    #[inline]
    pub fn set_of(&self, addr: BlockAddr) -> usize {
        addr.set_index(self.sets)
    }

    /// Tag for a block address.
    #[inline]
    pub fn tag_of(&self, addr: BlockAddr) -> u64 {
        addr.tag(self.sets)
    }

    /// Number of set-index bits.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Reconstruct the block address from a tag and set index.
    #[inline]
    pub fn block_addr(&self, tag: u64, set: usize) -> BlockAddr {
        BlockAddr((tag << self.index_bits()) | set as u64)
    }

    /// Tag width in bits for a physical address space of
    /// `addr_bits`-bit byte addresses (as Table 3 reports).
    #[inline]
    pub fn tag_bits(&self, addr_bits: u32) -> u32 {
        addr_bits - dg_mem::BLOCK_OFFSET_BITS - self.index_bits()
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheGeometry({} KiB: {} sets x {} ways)",
            self.capacity_bytes() / 1024,
            self.sets,
            self.ways
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sets x {} ways", self.sets, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_configurations() {
        // Baseline 2 MB 16-way LLC: 32 K entries.
        let llc = CacheGeometry::from_capacity(2 << 20, 16);
        assert_eq!(llc.entries(), 32 * 1024);
        assert_eq!(llc.sets(), 2048);
        assert_eq!(llc.index_bits(), 11);
        // 32-bit addresses: 32 - 6 (offset) - 11 (index) = 15 tag bits (Table 3).
        assert_eq!(llc.tag_bits(32), 15);

        // 16 KB 4-way L1.
        let l1 = CacheGeometry::from_capacity(16 << 10, 4);
        assert_eq!(l1.entries(), 256);
        assert_eq!(l1.sets(), 64);

        // 128 KB 8-way L2.
        let l2 = CacheGeometry::from_capacity(128 << 10, 8);
        assert_eq!(l2.entries(), 2048);

        // Doppelganger tag array: 16 K tags 16-way (1 MB tag-equivalent),
        // 16 tag bits per Table 3.
        let dtag = CacheGeometry::from_entries(16 * 1024, 16);
        assert_eq!(dtag.tag_bits(32), 16);

        // Doppelganger 1/4 data array: 4 K entries, 16-way.
        let ddata = CacheGeometry::from_entries(4 * 1024, 16);
        assert_eq!(ddata.capacity_bytes(), 256 << 10);
    }

    #[test]
    fn set_and_tag_round_trip() {
        let g = CacheGeometry::from_capacity(1 << 20, 16);
        let addr = BlockAddr(0x0012_3456);
        let set = g.set_of(addr);
        let tag = g.tag_of(addr);
        assert_eq!(g.block_addr(tag, set), addr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheGeometry::from_entries(48, 16);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_partial_sets() {
        CacheGeometry::from_entries(17, 16);
    }

    #[test]
    fn direct_mapped_works() {
        let g = CacheGeometry::from_entries(64, 1);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 1);
    }

    #[test]
    fn debug_mentions_shape() {
        let g = CacheGeometry::from_capacity(2 << 20, 16);
        let s = format!("{:?}", g);
        assert!(s.contains("2048 sets"));
    }
}
