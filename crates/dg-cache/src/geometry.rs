//! Cache size / associativity / indexing arithmetic.

use dg_mem::{BlockAddr, BLOCK_BYTES};
use std::fmt;

/// The physical organization of a set-associative structure.
///
/// # Example
///
/// ```
/// use dg_cache::CacheGeometry;
/// // The paper's baseline LLC: 2 MB, 16-way, 64 B blocks (Table 1).
/// let g = CacheGeometry::from_capacity(2 * 1024 * 1024, 16);
/// assert_eq!(g.entries(), 32 * 1024);   // 32 K blocks (Table 3)
/// assert_eq!(g.sets(), 2048);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

/// Why a requested cache shape is invalid.
///
/// Degenerate geometry used to surface only as deep
/// `expect("non-zero associativity")` panics inside the replacement
/// policy once the first victim was needed; shapes are now rejected at
/// construction time with a description of what is wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// `ways == 0`: no structure can hold a block.
    ZeroWays,
    /// A byte capacity that does not divide into whole sets.
    PartialCapacity {
        /// Block entries the capacity works out to.
        entries: usize,
        /// Requested associativity.
        ways: usize,
    },
    /// `entries` is zero, smaller than `ways`, or not a multiple of it.
    BadEntries {
        /// Requested block entries.
        entries: usize,
        /// Requested associativity.
        ways: usize,
    },
    /// The derived set count is zero or not a power of two (set
    /// indexing is a bit mask).
    BadSets {
        /// The offending derived set count.
        sets: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep the long-standing assertion phrases as substrings: call
        // sites (and tests) match on them.
        match *self {
            GeometryError::ZeroWays => write!(f, "associativity must be positive"),
            GeometryError::PartialCapacity { entries, ways } => {
                write!(f, "capacity must be a whole number of sets ({entries} blocks, {ways} ways)")
            }
            GeometryError::BadEntries { entries, ways } => {
                write!(f, "entries must be a multiple of ways ({entries} entries, {ways} ways)")
            }
            GeometryError::BadSets { sets } => {
                write!(f, "set count must be a power of two (got {sets})")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

impl CacheGeometry {
    /// Geometry from a data capacity in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two,
    /// or if `ways` is zero. Use [`CacheGeometry::try_from_capacity`]
    /// for a fallible version.
    pub fn from_capacity(capacity_bytes: usize, ways: usize) -> Self {
        Self::try_from_capacity(capacity_bytes, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Geometry from a total entry count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power-of-two multiple of
    /// `ways`. Use [`CacheGeometry::try_from_entries`] for a fallible
    /// version.
    pub fn from_entries(entries: usize, ways: usize) -> Self {
        Self::try_from_entries(entries, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CacheGeometry::from_capacity`].
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] describing the first violated shape
    /// constraint.
    pub fn try_from_capacity(capacity_bytes: usize, ways: usize) -> Result<Self, GeometryError> {
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        let entries = capacity_bytes / BLOCK_BYTES;
        if !entries.is_multiple_of(ways) {
            return Err(GeometryError::PartialCapacity { entries, ways });
        }
        Self::try_from_entries(entries, ways)
    }

    /// Fallible [`CacheGeometry::from_entries`].
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] describing the first violated shape
    /// constraint.
    pub fn try_from_entries(entries: usize, ways: usize) -> Result<Self, GeometryError> {
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        if entries < ways || !entries.is_multiple_of(ways) {
            return Err(GeometryError::BadEntries { entries, ways });
        }
        let sets = entries / ways;
        if !sets.is_power_of_two() {
            return Err(GeometryError::BadSets { sets });
        }
        Ok(CacheGeometry { sets, ways })
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity (ways per set).
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entries (sets × ways).
    #[inline]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Data capacity in bytes if every entry holds one 64 B block.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.entries() * BLOCK_BYTES
    }

    /// Set index for a block address.
    #[inline]
    pub fn set_of(&self, addr: BlockAddr) -> usize {
        addr.set_index(self.sets)
    }

    /// Tag for a block address.
    #[inline]
    pub fn tag_of(&self, addr: BlockAddr) -> u64 {
        addr.tag(self.sets)
    }

    /// Number of set-index bits.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Reconstruct the block address from a tag and set index.
    #[inline]
    pub fn block_addr(&self, tag: u64, set: usize) -> BlockAddr {
        BlockAddr((tag << self.index_bits()) | set as u64)
    }

    /// Tag width in bits for a physical address space of
    /// `addr_bits`-bit byte addresses (as Table 3 reports).
    #[inline]
    pub fn tag_bits(&self, addr_bits: u32) -> u32 {
        addr_bits - dg_mem::BLOCK_OFFSET_BITS - self.index_bits()
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheGeometry({} KiB: {} sets x {} ways)",
            self.capacity_bytes() / 1024,
            self.sets,
            self.ways
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sets x {} ways", self.sets, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_configurations() {
        // Baseline 2 MB 16-way LLC: 32 K entries.
        let llc = CacheGeometry::from_capacity(2 << 20, 16);
        assert_eq!(llc.entries(), 32 * 1024);
        assert_eq!(llc.sets(), 2048);
        assert_eq!(llc.index_bits(), 11);
        // 32-bit addresses: 32 - 6 (offset) - 11 (index) = 15 tag bits (Table 3).
        assert_eq!(llc.tag_bits(32), 15);

        // 16 KB 4-way L1.
        let l1 = CacheGeometry::from_capacity(16 << 10, 4);
        assert_eq!(l1.entries(), 256);
        assert_eq!(l1.sets(), 64);

        // 128 KB 8-way L2.
        let l2 = CacheGeometry::from_capacity(128 << 10, 8);
        assert_eq!(l2.entries(), 2048);

        // Doppelganger tag array: 16 K tags 16-way (1 MB tag-equivalent),
        // 16 tag bits per Table 3.
        let dtag = CacheGeometry::from_entries(16 * 1024, 16);
        assert_eq!(dtag.tag_bits(32), 16);

        // Doppelganger 1/4 data array: 4 K entries, 16-way.
        let ddata = CacheGeometry::from_entries(4 * 1024, 16);
        assert_eq!(ddata.capacity_bytes(), 256 << 10);
    }

    #[test]
    fn set_and_tag_round_trip() {
        let g = CacheGeometry::from_capacity(1 << 20, 16);
        let addr = BlockAddr(0x0012_3456);
        let set = g.set_of(addr);
        let tag = g.tag_of(addr);
        assert_eq!(g.block_addr(tag, set), addr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        CacheGeometry::from_entries(48, 16);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_partial_sets() {
        CacheGeometry::from_entries(17, 16);
    }

    #[test]
    #[should_panic(expected = "associativity must be positive")]
    fn rejects_zero_ways() {
        CacheGeometry::from_entries(64, 0);
    }

    #[test]
    #[should_panic(expected = "entries must be a multiple of ways")]
    fn rejects_zero_entries() {
        CacheGeometry::from_entries(0, 16);
    }

    #[test]
    fn try_constructors_reject_degenerate_shapes() {
        use GeometryError::*;
        assert_eq!(CacheGeometry::try_from_entries(64, 0), Err(ZeroWays));
        assert_eq!(CacheGeometry::try_from_capacity(1 << 20, 0), Err(ZeroWays));
        assert_eq!(
            CacheGeometry::try_from_entries(0, 16),
            Err(BadEntries { entries: 0, ways: 16 })
        );
        assert_eq!(
            CacheGeometry::try_from_entries(8, 16),
            Err(BadEntries { entries: 8, ways: 16 })
        );
        assert_eq!(
            CacheGeometry::try_from_entries(48, 16),
            Err(BadSets { sets: 3 })
        );
        assert_eq!(
            CacheGeometry::try_from_capacity(65, 1),
            Ok(CacheGeometry { sets: 1, ways: 1 })
        );
        // 100 blocks, 4 ways -> 25 sets: divides evenly but indexing
        // needs a power of two.
        assert_eq!(
            CacheGeometry::try_from_capacity(100 * 64, 4),
            Err(BadSets { sets: 25 })
        );
        // 3 blocks, 2 ways: not a whole number of sets.
        assert_eq!(
            CacheGeometry::try_from_capacity(3 * 64, 2),
            Err(PartialCapacity { entries: 3, ways: 2 })
        );
        // Zero capacity has zero entries: rejected, not a zero-set cache.
        assert!(CacheGeometry::try_from_capacity(0, 4).is_err());
    }

    #[test]
    fn geometry_error_messages_are_descriptive() {
        let e = CacheGeometry::try_from_entries(48, 16).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("power of two") && msg.contains('3'), "{msg}");
    }

    #[test]
    fn direct_mapped_works() {
        let g = CacheGeometry::from_entries(64, 1);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 1);
    }

    #[test]
    fn debug_mentions_shape() {
        let g = CacheGeometry::from_capacity(2 << 20, 16);
        let s = format!("{:?}", g);
        assert!(s.contains("2048 sets"));
    }
}
