//! A Touché-style compressed cache: superblock tags over a
//! segment-granular BΔI-compressed data array.
//!
//! Three ideas from the compression literature compose here:
//!
//! * **BΔI compression** (Pekhimenko et al., PACT 2012) shrinks each
//!   64-byte block to 1–40 bytes when its values share a base; the
//!   encoder/decoder pair lives in `dg-compress` and must round-trip
//!   exactly — the stored image is `decompress(compress(block))`, so a
//!   lossy codec would corrupt program output and trip the lockstep
//!   oracle on the first fill.
//! * **Segment-granular data array**: capacity is accounted in fixed
//!   [`CompressedConfig::segment_bytes`] segments rather than ways, so
//!   a set holds more blocks the better they compress. Segments are
//!   fungible — only the per-set free count is architecturally visible,
//!   never which physical segment holds which bytes.
//! * **Superblock tags** (Touché-style): [`CompressedConfig::sb_blocks`]
//!   neighbouring blocks share one tag entry, amortising the tag-area
//!   overhead that otherwise grows with the compression ratio. A tag is
//!   resident while at least one of its blocks is; evicting a tag
//!   displaces every block under it.
//!
//! Replacement is global-LRU within a set at block granularity, with a
//! single monotonic stamp shared by tags and blocks: a tag's stamp is
//! the newest stamp of its blocks, tag victims are the stalest tag, and
//! segment-pressure victims are the stalest block. Dirty writebacks
//! re-compress in place; a block that no longer fits evicts its set's
//! LRU blocks until it does ([`CompStats::expansion_evictions`]).
//!
//! `dg-oracle` carries a deliberately naive twin (`OracleCompressed`,
//! full scans and explicit per-segment owner lists) that must agree with
//! this engine on every counter and every displaced block.

use crate::Evicted;
use dg_compress::bdi;
use dg_mem::{BlockAddr, BlockData, BLOCK_BYTES};
use dg_obs::{enabled, Hist64, Level, Snapshot};
use std::fmt;
use std::ops::AddAssign;

/// Geometry of a [`CompressedCache`].
///
/// All dimensions are powers of two; [`CompressedConfig::validate`]
/// rejects shapes that cannot hold even a single uncompressed block per
/// set. The usual way to build one is [`CompressedConfig::from_llc`],
/// which reinterprets a conventional `capacity × ways` budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressedConfig {
    /// Total data-array capacity in bytes (matches the conventional
    /// LLC budget it replaces).
    pub data_bytes: usize,
    /// Number of tag sets.
    pub sets: usize,
    /// Superblock tag entries per set (tag-array associativity).
    pub tag_ways: usize,
    /// Neighbouring blocks sharing one tag (2–4 in Touché; 1 degrades
    /// to a per-block tag).
    pub sb_blocks: usize,
    /// Data-array allocation granule in bytes.
    pub segment_bytes: usize,
}

impl CompressedConfig {
    /// Reinterpret a conventional `capacity / ways` LLC budget as a
    /// compressed organization: same sets and data bytes, `ways`
    /// superblock tags per set, 8-byte segments.
    pub fn from_llc(llc_bytes: usize, ways: usize, sb_blocks: usize) -> Self {
        CompressedConfig {
            data_bytes: llc_bytes,
            sets: llc_bytes / (ways * BLOCK_BYTES),
            tag_ways: ways,
            sb_blocks,
            segment_bytes: 8,
        }
    }

    /// Data segments available to each set.
    pub fn segments_per_set(&self) -> usize {
        self.data_bytes / self.sets / self.segment_bytes
    }

    /// Segments an uncompressed 64-byte block occupies (the worst case).
    pub fn max_block_segments(&self) -> usize {
        BLOCK_BYTES.div_ceil(self.segment_bytes)
    }

    /// Segments needed for a block that compressed to `bytes`.
    pub fn segments_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.segment_bytes).max(1)
    }

    /// Check the shape is simulable.
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |n: usize, what: &str| -> Result<(), String> {
            if n == 0 || !n.is_power_of_two() {
                return Err(format!("{what} must be a nonzero power of two, got {n}"));
            }
            Ok(())
        };
        pow2(self.sets, "compressed sets")?;
        pow2(self.tag_ways, "compressed tag_ways")?;
        pow2(self.sb_blocks, "compressed sb_blocks")?;
        pow2(self.segment_bytes, "compressed segment_bytes")?;
        if self.sb_blocks > 8 {
            return Err(format!("sb_blocks {} exceeds 8 (tag metadata width)", self.sb_blocks));
        }
        if self.segment_bytes > BLOCK_BYTES {
            return Err(format!(
                "segment_bytes {} exceeds the {BLOCK_BYTES}-byte block",
                self.segment_bytes
            ));
        }
        if self.data_bytes % (self.sets * self.segment_bytes) != 0 {
            return Err(format!(
                "data_bytes {} not divisible by sets x segment_bytes ({} x {})",
                self.data_bytes, self.sets, self.segment_bytes
            ));
        }
        if self.segments_per_set() < self.max_block_segments() {
            return Err(format!(
                "a set's {} segments cannot hold one uncompressed block ({} segments)",
                self.segments_per_set(),
                self.max_block_segments()
            ));
        }
        Ok(())
    }
}

/// Event counters for a [`CompressedCache`].
///
/// The first six fields mirror [`crate::CacheStats`]; the rest are
/// compression-specific. All are architectural (the lockstep oracle
/// reproduces every one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompStats {
    /// Lookups that found the block resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks inserted by fills.
    pub insertions: u64,
    /// Blocks displaced (tag eviction or segment pressure).
    pub evictions: u64,
    /// Displaced blocks that were dirty.
    pub dirty_evictions: u64,
    /// Blocks removed by external invalidation.
    pub invalidations: u64,
    /// Whole superblock tags displaced to admit a new superblock.
    pub tag_evictions: u64,
    /// Blocks displaced because a dirty re-compression grew.
    pub expansion_evictions: u64,
    /// Encoder runs on fill.
    pub compressions: u64,
    /// Encoder runs on a dirty-writeback re-compression.
    pub recompressions: u64,
    /// Decoder runs serving read hits.
    pub decompressions: u64,
    /// Superblock tag-array probes.
    pub tag_accesses: u64,
    /// Data-array segments read or written.
    pub data_seg_accesses: u64,
    /// Sum of exact BΔI sizes over all fills (compression-ratio
    /// numerator before segment rounding).
    pub fill_bytes: u64,
    /// Sum of segment footprints over all fills (after rounding).
    pub fill_segments: u64,
}

impl CompStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean stored fraction of inserted blocks, after segment rounding
    /// (`1.0` = incompressible); `1.0` when nothing was inserted.
    pub fn stored_fraction(&self, segment_bytes: usize) -> f64 {
        if self.insertions == 0 {
            return 1.0;
        }
        (self.fill_segments * segment_bytes as u64) as f64
            / (self.insertions * BLOCK_BYTES as u64) as f64
    }

    /// Mean exact BΔI compressed fraction of inserted blocks, before
    /// segment rounding; `1.0` when nothing was inserted.
    pub fn bdi_fraction(&self) -> f64 {
        if self.insertions == 0 {
            return 1.0;
        }
        self.fill_bytes as f64 / (self.insertions * BLOCK_BYTES as u64) as f64
    }
}

impl Snapshot for CompStats {
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits),
            ("misses", self.misses),
            ("insertions", self.insertions),
            ("evictions", self.evictions),
            ("dirty_evictions", self.dirty_evictions),
            ("invalidations", self.invalidations),
            ("tag_evictions", self.tag_evictions),
            ("expansion_evictions", self.expansion_evictions),
            ("compressions", self.compressions),
            ("recompressions", self.recompressions),
            ("decompressions", self.decompressions),
            ("tag_accesses", self.tag_accesses),
            ("data_seg_accesses", self.data_seg_accesses),
            ("fill_bytes", self.fill_bytes),
            ("fill_segments", self.fill_segments),
        ]
    }
}

impl AddAssign for CompStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.invalidations += rhs.invalidations;
        self.tag_evictions += rhs.tag_evictions;
        self.expansion_evictions += rhs.expansion_evictions;
        self.compressions += rhs.compressions;
        self.recompressions += rhs.recompressions;
        self.decompressions += rhs.decompressions;
        self.tag_accesses += rhs.tag_accesses;
        self.data_seg_accesses += rhs.data_seg_accesses;
        self.fill_bytes += rhs.fill_bytes;
        self.fill_segments += rhs.fill_segments;
    }
}

impl fmt::Display for CompStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} misses {} ins {} ev {} (dirty {} tag {} exp {}) seg-acc {}",
            self.hits,
            self.misses,
            self.insertions,
            self.evictions,
            self.dirty_evictions,
            self.tag_evictions,
            self.expansion_evictions,
            self.data_seg_accesses,
        )
    }
}

/// One resident (compressed) block under a superblock tag.
///
/// The data is kept in *decompressed* form — `decompress(compress(x))`
/// at insertion — so reads are copies, while `seg_count` charges the
/// capacity the compressed image would occupy. Storing the round-trip
/// image rather than the original keeps the codec load-bearing: any
/// lossy encoding shows up as wrong bytes, not just wrong counters.
#[derive(Clone, Debug)]
struct CompBlock {
    dirty: bool,
    /// Data-array segments charged to this block.
    seg_count: usize,
    last_use: u64,
    data: BlockData,
}

/// A superblock tag entry: one tag covering `sb_blocks` neighbours.
#[derive(Clone, Debug)]
struct CompTag {
    sb_tag: u64,
    /// Newest stamp of any block under this tag.
    last_use: u64,
    /// Per-sub-block state, indexed by `addr % sb_blocks`.
    blocks: Vec<Option<CompBlock>>,
}

impl CompTag {
    fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }
}

#[derive(Clone, Debug)]
struct CompSet {
    /// Tag entries; `None` = free tag way.
    tags: Vec<Option<CompTag>>,
    /// Unallocated data segments (segments are fungible, so a count is
    /// the whole allocator state; the oracle keeps an explicit
    /// per-segment owner list instead and must agree).
    free_segs: usize,
}

/// The compressed LLC array: superblock tags + segmented BΔI data.
///
/// Passive container like [`crate::ConventionalCache`]: it answers
/// hits, accepts fills and reports displaced blocks; miss handling is
/// composed by `dg-system`. A fill or dirty re-compression can displace
/// *several* blocks (a whole superblock, or LRU blocks under segment
/// pressure), so eviction output is a `Vec` push rather than a single
/// `Option`.
#[derive(Clone, Debug)]
pub struct CompressedCache {
    cfg: CompressedConfig,
    sets: Vec<CompSet>,
    /// Global monotonic LRU clock shared by tags and blocks.
    stamp: u64,
    stats: CompStats,
    /// Per-set segment occupancy sampled at each fill, recorded only at
    /// `Level::Metrics` and above. Observation-only.
    occupancy: Hist64,
    sb_shift: u32,
    set_shift: u32,
}

impl CompressedCache {
    /// An empty cache with the given (validated) shape.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CompressedConfig::validate`].
    pub fn new(cfg: CompressedConfig) -> Self {
        cfg.validate().expect("invalid CompressedConfig");
        let set = CompSet {
            tags: vec![None; cfg.tag_ways],
            free_segs: cfg.segments_per_set(),
        };
        CompressedCache {
            cfg,
            sets: vec![set; cfg.sets],
            stamp: 0,
            stats: CompStats::default(),
            occupancy: Hist64::new(),
            sb_shift: cfg.sb_blocks.trailing_zeros(),
            set_shift: cfg.sets.trailing_zeros(),
        }
    }

    /// The cache's shape.
    pub fn config(&self) -> &CompressedConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CompStats {
        &self.stats
    }

    /// Reset statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CompStats::default();
        self.occupancy = Hist64::new();
    }

    /// Distribution of per-set segment occupancy at fill time (empty
    /// unless the run was profiled at `Level::Metrics` or above).
    pub fn occupancy_hist(&self) -> &Hist64 {
        &self.occupancy
    }

    #[inline]
    fn sub_of(&self, addr: BlockAddr) -> usize {
        (addr.0 & (self.cfg.sb_blocks as u64 - 1)) as usize
    }

    #[inline]
    fn set_of(&self, addr: BlockAddr) -> usize {
        ((addr.0 >> self.sb_shift) & (self.cfg.sets as u64 - 1)) as usize
    }

    #[inline]
    fn sb_tag_of(&self, addr: BlockAddr) -> u64 {
        (addr.0 >> self.sb_shift) >> self.set_shift
    }

    /// Rebuild a block address from its placement.
    fn block_addr(&self, sb_tag: u64, set: usize, sub: usize) -> BlockAddr {
        BlockAddr((((sb_tag << self.set_shift) | set as u64) << self.sb_shift) | sub as u64)
    }

    /// Locate `addr` without touching stats or LRU.
    fn locate(&self, addr: BlockAddr) -> Option<(usize, usize, usize)> {
        let set = self.set_of(addr);
        let sb_tag = self.sb_tag_of(addr);
        let sub = self.sub_of(addr);
        for (way, slot) in self.sets[set].tags.iter().enumerate() {
            if let Some(tag) = slot {
                if tag.sb_tag == sb_tag {
                    return tag.blocks[sub].as_ref().map(|_| (set, way, sub));
                }
            }
        }
        None
    }

    /// Whether `addr` is present (no stats or LRU update).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.locate(addr).is_some()
    }

    /// The resident block's data, if present (no stats or LRU update).
    pub fn peek(&self, addr: BlockAddr) -> Option<&BlockData> {
        let (set, way, sub) = self.locate(addr)?;
        let tag = self.sets[set].tags[way].as_ref().expect("located tag is valid");
        tag.blocks[sub].as_ref().map(|b| &b.data)
    }

    /// Read `addr`: on a hit, decompresses and returns the block and
    /// updates LRU/stats; on a miss, records the miss and returns
    /// `None`.
    pub fn read(&mut self, addr: BlockAddr) -> Option<BlockData> {
        self.stats.tag_accesses += 1;
        match self.locate(addr) {
            Some((set, way, sub)) => {
                self.stamp += 1;
                let stamp = self.stamp;
                let tag = self.sets[set].tags[way].as_mut().expect("located tag is valid");
                tag.last_use = stamp;
                let blk = tag.blocks[sub].as_mut().expect("located block is valid");
                blk.last_use = stamp;
                self.stats.hits += 1;
                self.stats.decompressions += 1;
                self.stats.data_seg_accesses += blk.seg_count as u64;
                Some(blk.data)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Write the full block at `addr` (a dirty writeback from above):
    /// on a hit, re-compresses, evicting the set's LRU blocks if the
    /// block grew past the free segments, and returns `true`; on a miss
    /// returns `false` (write-allocate is composed by the caller via
    /// [`Self::fill`]). Displaced blocks are passed to `emit`.
    pub fn write(
        &mut self,
        addr: BlockAddr,
        data: &BlockData,
        emit: &mut dyn FnMut(Evicted),
    ) -> bool {
        self.stats.tag_accesses += 1;
        let Some((set, way, sub)) = self.locate(addr) else {
            self.stats.misses += 1;
            return false;
        };
        self.stats.hits += 1;
        let comp = bdi::compress(data);
        let stored = bdi::decompress(&comp);
        let new_segs = self.cfg.segments_for(comp.size_bytes());
        self.stats.recompressions += 1;
        let old_segs = self.sets[set].tags[way].as_ref().expect("located tag is valid").blocks
            [sub]
            .as_ref()
            .expect("located block is valid")
            .seg_count;
        if new_segs > old_segs {
            // The block grew: release its old footprint conceptually and
            // make room for the new one, never victimising itself.
            while self.sets[set].free_segs < new_segs - old_segs {
                let found = self.evict_lru_block(set, Some((way, sub)), Some(way), true, emit);
                assert!(found, "compressed set cannot satisfy segment demand");
            }
            self.sets[set].free_segs -= new_segs - old_segs;
        } else {
            self.sets[set].free_segs += old_segs - new_segs;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.sets[set].tags[way].as_mut().expect("located tag is valid");
        tag.last_use = stamp;
        let blk = tag.blocks[sub].as_mut().expect("located block is valid");
        blk.data = stored;
        blk.dirty = true;
        blk.seg_count = new_segs;
        blk.last_use = stamp;
        self.stats.data_seg_accesses += new_segs as u64;
        true
    }

    /// Insert `addr` with an explicit dirty bit, compressing the data
    /// and evicting as needed (a conflicting superblock tag first, then
    /// LRU blocks until the segments fit). Displaced blocks are passed
    /// to `emit` in eviction order.
    ///
    /// Fills must be misses: filling a resident block panics in debug
    /// builds, mirroring [`crate::ConventionalCache::fill_ref`].
    pub fn fill(
        &mut self,
        addr: BlockAddr,
        data: &BlockData,
        dirty: bool,
        emit: &mut dyn FnMut(Evicted),
    ) {
        debug_assert!(self.locate(addr).is_none(), "fill of a resident block");
        let comp = bdi::compress(data);
        let stored = bdi::decompress(&comp);
        let segs = self.cfg.segments_for(comp.size_bytes());
        self.stats.compressions += 1;
        self.stats.fill_bytes += comp.size_bytes() as u64;
        self.stats.fill_segments += segs as u64;
        self.stats.insertions += 1;

        let set = self.set_of(addr);
        let sb_tag = self.sb_tag_of(addr);
        let sub = self.sub_of(addr);

        // 1. Acquire a tag way: match, else a free way, else evict the
        //    stalest superblock wholesale.
        let way = match self.find_tag_way(set, sb_tag) {
            Some(way) => way,
            None => {
                let way = match self.sets[set].tags.iter().position(|t| t.is_none()) {
                    Some(free) => free,
                    None => {
                        let victim = self.stalest_tag_way(set);
                        self.evict_tag(set, victim, emit);
                        self.stats.tag_evictions += 1;
                        victim
                    }
                };
                self.sets[set].tags[way] = Some(CompTag {
                    sb_tag,
                    last_use: 0,
                    blocks: vec![None; self.cfg.sb_blocks],
                });
                way
            }
        };

        // 2. Reserve segments, evicting LRU blocks under pressure. The
        //    incoming tag way is pinned: freshly installed it holds no
        //    blocks yet and must survive until step 3.
        while self.sets[set].free_segs < segs {
            let found = self.evict_lru_block(set, None, Some(way), false, emit);
            assert!(found, "compressed set cannot satisfy segment demand");
        }
        self.sets[set].free_segs -= segs;

        // 3. Install.
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.sets[set].tags[way].as_mut().expect("tag acquired above");
        tag.last_use = stamp;
        tag.blocks[sub] = Some(CompBlock { dirty, seg_count: segs, last_use: stamp, data: stored });
        self.stats.data_seg_accesses += segs as u64;
        if enabled(Level::Metrics) {
            self.record_occupancy(set);
        }
    }

    /// Remove `addr` if present, returning its final state (used for
    /// back-invalidations and inclusion enforcement). Frees the block's
    /// segments and, when it was the superblock's last block, the tag.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<Evicted> {
        let (set, way, sub) = self.locate(addr)?;
        let tag = self.sets[set].tags[way].as_mut().expect("located tag is valid");
        let blk = tag.blocks[sub].take().expect("located block is valid");
        let empty = tag.live_blocks() == 0;
        if empty {
            self.sets[set].tags[way] = None;
        }
        self.sets[set].free_segs += blk.seg_count;
        self.stats.invalidations += 1;
        Some(Evicted { addr, dirty: blk.dirty, data: blk.data })
    }

    /// Clear a resident block's dirty bit (after its data was flushed).
    /// Returns `false` on a miss.
    pub fn clear_dirty(&mut self, addr: BlockAddr) -> bool {
        match self.locate(addr) {
            Some((set, way, sub)) => {
                let tag = self.sets[set].tags[way].as_mut().expect("located tag is valid");
                tag.blocks[sub].as_mut().expect("located block is valid").dirty = false;
                true
            }
            None => false,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.tags.iter().flatten())
            .map(|t| t.live_blocks())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident superblock tags.
    pub fn resident_tags(&self) -> usize {
        self.sets.iter().map(|s| s.tags.iter().flatten().count()).sum()
    }

    /// Iterate over resident blocks as `(addr, dirty, &data)` in
    /// deterministic `(set, way, sub)` order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, bool, &BlockData)> {
        self.sets.iter().enumerate().flat_map(move |(set, s)| {
            s.tags.iter().enumerate().flat_map(move |(_, slot)| {
                slot.iter().flat_map(move |tag| {
                    tag.blocks.iter().enumerate().filter_map(move |(sub, b)| {
                        b.as_ref()
                            .map(|b| (self.block_addr(tag.sb_tag, set, sub), b.dirty, &b.data))
                    })
                })
            })
        })
    }

    /// Structural self-checks, used by the differential harness:
    /// segment accounting balances, no empty tags linger, per-block
    /// footprints match what the encoder says the stored data needs.
    pub fn check_invariants(&self) {
        let budget = self.cfg.segments_per_set();
        for (si, set) in self.sets.iter().enumerate() {
            let mut used = 0;
            for slot in set.tags.iter().flatten() {
                assert!(slot.live_blocks() > 0, "set {si}: resident tag with no blocks");
                assert!(slot.last_use <= self.stamp, "set {si}: tag stamp from the future");
                for blk in slot.blocks.iter().flatten() {
                    assert!(
                        (1..=self.cfg.max_block_segments()).contains(&blk.seg_count),
                        "set {si}: block footprint {} out of range",
                        blk.seg_count
                    );
                    assert!(blk.last_use <= slot.last_use, "set {si}: block newer than its tag");
                    // The stored image must still compress to the
                    // footprint it was charged (codec determinism +
                    // exact round-trip).
                    let again = self.cfg.segments_for(bdi::compress(&blk.data).size_bytes());
                    assert_eq!(again, blk.seg_count, "set {si}: stale segment footprint");
                    used += blk.seg_count;
                }
            }
            assert!(used <= budget, "set {si}: {used} segments used of {budget}");
            assert_eq!(
                set.free_segs,
                budget - used,
                "set {si}: free-segment count out of balance"
            );
        }
    }

    #[cold]
    fn record_occupancy(&mut self, set: usize) {
        let used = self.cfg.segments_per_set() - self.sets[set].free_segs;
        self.occupancy.record(used as u64);
    }

    fn find_tag_way(&self, set: usize, sb_tag: u64) -> Option<usize> {
        self.sets[set]
            .tags
            .iter()
            .position(|t| t.as_ref().is_some_and(|t| t.sb_tag == sb_tag))
    }

    /// The way holding the stalest resident tag (first strict minimum).
    fn stalest_tag_way(&self, set: usize) -> usize {
        let mut best: Option<(usize, u64)> = None;
        for (way, slot) in self.sets[set].tags.iter().enumerate() {
            let tag = slot.as_ref().expect("caller checked: no free tag way");
            if best.is_none_or(|(_, b)| tag.last_use < b) {
                best = Some((way, tag.last_use));
            }
        }
        best.expect("tag_ways > 0").0
    }

    /// Displace every block under `way`'s tag (sub-ascending) and free
    /// the tag entry.
    fn evict_tag(&mut self, set: usize, way: usize, emit: &mut dyn FnMut(Evicted)) {
        let tag = self.sets[set].tags[way].take().expect("evicting a valid tag");
        let mut freed = 0;
        for (sub, blk) in tag.blocks.into_iter().enumerate() {
            if let Some(blk) = blk {
                self.stats.evictions += 1;
                if blk.dirty {
                    self.stats.dirty_evictions += 1;
                }
                freed += blk.seg_count;
                emit(Evicted {
                    addr: self.block_addr(tag.sb_tag, set, sub),
                    dirty: blk.dirty,
                    data: blk.data,
                });
            }
        }
        self.sets[set].free_segs += freed;
    }

    /// Evict the set's LRU block (first strict minimum in `(way, sub)`
    /// scan order), skipping `exclude` and never freeing the tag in
    /// `pin_way` even if it empties. Returns `false` when no candidate
    /// exists.
    fn evict_lru_block(
        &mut self,
        set: usize,
        exclude: Option<(usize, usize)>,
        pin_way: Option<usize>,
        expansion: bool,
        emit: &mut dyn FnMut(Evicted),
    ) -> bool {
        let mut victim: Option<(usize, usize, u64)> = None;
        for (way, slot) in self.sets[set].tags.iter().enumerate() {
            let Some(tag) = slot else { continue };
            for (sub, blk) in tag.blocks.iter().enumerate() {
                let Some(blk) = blk else { continue };
                if exclude == Some((way, sub)) {
                    continue;
                }
                if victim.is_none_or(|(_, _, b)| blk.last_use < b) {
                    victim = Some((way, sub, blk.last_use));
                }
            }
        }
        let Some((way, sub, _)) = victim else { return false };
        let tag = self.sets[set].tags[way].as_mut().expect("victim tag is valid");
        let blk = tag.blocks[sub].take().expect("victim block is valid");
        let sb_tag = tag.sb_tag;
        if tag.live_blocks() == 0 && pin_way != Some(way) {
            self.sets[set].tags[way] = None;
        }
        self.sets[set].free_segs += blk.seg_count;
        self.stats.evictions += 1;
        if blk.dirty {
            self.stats.dirty_evictions += 1;
        }
        if expansion {
            self.stats.expansion_evictions += 1;
        }
        emit(Evicted { addr: self.block_addr(sb_tag, set, sub), dirty: blk.dirty, data: blk.data });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_mem::ElemType;

    /// 2 sets x 2 superblock tags x 2 blocks, 16 segments (128 B) per
    /// set — tag reach (4 blocks/set) and segment reach (2 uncompressed
    /// blocks/set) both bind.
    fn tiny() -> CompressedCache {
        CompressedCache::new(CompressedConfig {
            data_bytes: 256,
            sets: 2,
            tag_ways: 2,
            sb_blocks: 2,
            segment_bytes: 8,
        })
    }

    fn blk(v: f64) -> BlockData {
        BlockData::from_values(ElemType::F64, &[v; 8])
    }

    /// A block BΔI cannot compress (8 wildly different doubles).
    fn incompressible(seed: u64) -> BlockData {
        let mut vals = [0.0f64; 8];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = f64::from_bits(
                (seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(i as u32 * 7 + 1))
                    | 0x3ff0_0000_0000_0000,
            );
        }
        BlockData::from_values(ElemType::F64, &vals)
    }

    #[test]
    fn cold_miss_then_hit_round_trips() {
        let mut c = tiny();
        let mut ev = Vec::new();
        assert!(c.read(BlockAddr(5)).is_none());
        c.fill(BlockAddr(5), &blk(3.5), false, &mut |e| ev.push(e));
        assert!(ev.is_empty());
        assert_eq!(c.read(BlockAddr(5)), Some(blk(3.5)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().decompressions, 1);
        c.check_invariants();
    }

    #[test]
    fn compression_packs_more_blocks_than_ways() {
        let mut c = tiny();
        let mut ev = Vec::new();
        // Repeating doubles compress to ~9 bytes = 2 segments, so set 0
        // (16 segments) holds both superblocks' worth: 4 blocks under 2
        // tags, where an uncompressed cache with 2 x 64B would hold 2.
        for a in [0u64, 1, 4, 5] {
            c.fill(BlockAddr(a), &blk(a as f64), false, &mut |e| ev.push(e));
        }
        assert!(ev.is_empty(), "compressed set should hold all four blocks");
        assert_eq!(c.len(), 4);
        assert_eq!(c.resident_tags(), 2);
        c.check_invariants();
    }

    #[test]
    fn incompressible_blocks_fall_back_to_segment_pressure() {
        let mut c = tiny();
        let mut ev = Vec::new();
        // 8 segments each: two fills fill the set, the third displaces
        // the LRU block even though tag ways remain.
        c.fill(BlockAddr(0), &incompressible(1), false, &mut |e| ev.push(e));
        c.fill(BlockAddr(4), &incompressible(2), false, &mut |e| ev.push(e));
        assert!(ev.is_empty());
        c.fill(BlockAddr(8), &incompressible(3), false, &mut |e| ev.push(e));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, BlockAddr(0), "LRU block evicted under segment pressure");
        assert_eq!(c.stats().evictions, 1);
        c.check_invariants();
    }

    #[test]
    fn superblock_tag_eviction_displaces_whole_neighbourhood() {
        let mut c = tiny();
        let mut ev = Vec::new();
        // Fill both tags of set 0 with both their blocks (compressible,
        // so segments never bind).
        for a in [0u64, 1, 4, 5] {
            c.fill(BlockAddr(a), &blk(a as f64), false, &mut |e| ev.push(e));
        }
        // A third superblock in set 0 needs a tag: the stalest
        // superblock {0,1} goes wholesale, sub-ascending.
        c.fill(BlockAddr(8), &blk(9.0), false, &mut |e| ev.push(e));
        assert_eq!(ev.iter().map(|e| e.addr.0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(c.stats().tag_evictions, 1);
        assert_eq!(c.stats().evictions, 2);
        c.check_invariants();
    }

    #[test]
    fn dirty_growth_on_write_evicts_to_fit() {
        let mut c = tiny();
        let mut ev = Vec::new();
        // Three compressible blocks (2 segments each) across two tags.
        c.fill(BlockAddr(0), &blk(1.0), false, &mut |e| ev.push(e));
        c.fill(BlockAddr(1), &blk(2.0), false, &mut |e| ev.push(e));
        c.fill(BlockAddr(4), &blk(3.0), false, &mut |e| ev.push(e));
        assert!(ev.is_empty());
        // Rewrite block 4 with incompressible data: 2 -> 8 segments.
        // 16 - 6 = 10 free, needs 6 more: fits without eviction.
        assert!(c.write(BlockAddr(4), &incompressible(7), &mut |e| ev.push(e)));
        assert!(ev.is_empty());
        // Rewrite block 0 the same way: free = 16 - (2+2+8) = 4, needs
        // 6 more -> evicts LRU block 1 (block 0 itself is excluded).
        assert!(c.write(BlockAddr(0), &incompressible(8), &mut |e| ev.push(e)));
        assert_eq!(ev.iter().map(|e| e.addr.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.stats().expansion_evictions, 1);
        assert!(c.contains(BlockAddr(0)));
        assert_eq!(c.peek(BlockAddr(0)), Some(&bdi::decompress(&bdi::compress(&incompressible(8)))));
        c.check_invariants();
    }

    #[test]
    fn dirty_shrink_frees_segments() {
        let mut c = tiny();
        let mut ev = Vec::new();
        c.fill(BlockAddr(0), &incompressible(1), true, &mut |e| ev.push(e));
        let free_before = c.cfg.segments_per_set() - 8;
        assert_eq!(c.sets[0].free_segs, free_before);
        assert!(c.write(BlockAddr(0), &blk(1.0), &mut |e| ev.push(e)));
        assert!(c.sets[0].free_segs > free_before, "shrink must return segments");
        c.check_invariants();
    }

    #[test]
    fn invalidate_frees_tag_when_last_block_goes() {
        let mut c = tiny();
        let mut ev = Vec::new();
        c.fill(BlockAddr(0), &blk(1.0), true, &mut |e| ev.push(e));
        c.fill(BlockAddr(1), &blk(2.0), false, &mut |e| ev.push(e));
        assert_eq!(c.resident_tags(), 1);
        let inv = c.invalidate(BlockAddr(0)).unwrap();
        assert!(inv.dirty);
        assert_eq!(c.resident_tags(), 1, "sibling keeps the tag alive");
        c.invalidate(BlockAddr(1)).unwrap();
        assert_eq!(c.resident_tags(), 0);
        assert!(c.is_empty());
        c.check_invariants();
    }

    #[test]
    fn iter_blocks_round_trips_addresses() {
        let mut c = tiny();
        let mut ev = Vec::new();
        for a in [0u64, 3, 6, 9] {
            c.fill(BlockAddr(a), &blk(a as f64), a % 2 == 0, &mut |e| ev.push(e));
        }
        let mut addrs: Vec<u64> = c.iter_blocks().map(|(a, _, _)| a.0).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 3, 6, 9]);
        for (addr, dirty, data) in c.iter_blocks() {
            assert_eq!(dirty, addr.0 % 2 == 0);
            assert_eq!(data, &blk(addr.0 as f64));
        }
    }

    #[test]
    fn validate_rejects_undersized_sets() {
        let bad = CompressedConfig {
            data_bytes: 64,
            sets: 2,
            tag_ways: 2,
            sb_blocks: 2,
            segment_bytes: 8,
        };
        assert!(bad.validate().is_err(), "32B per set cannot hold a 64B block");
        let odd = CompressedConfig { sb_blocks: 3, ..tiny().cfg };
        assert!(odd.validate().is_err());
    }

    #[test]
    fn stored_fraction_tracks_compressibility() {
        let mut c = tiny();
        let mut ev = Vec::new();
        c.fill(BlockAddr(0), &blk(1.0), false, &mut |e| ev.push(e));
        assert!(c.stats().stored_fraction(8) < 0.5, "repeat blocks compress well");
        assert!(c.stats().bdi_fraction() <= c.stats().stored_fraction(8));
        c.fill(BlockAddr(4), &incompressible(1), false, &mut |e| ev.push(e));
        assert!(c.stats().stored_fraction(8) > 0.5, "raw fallback drags the mean up");
    }
}
