//! Directory sharer sets for MSI coherence.

use std::fmt;

/// A full-map sharer vector for a directory entry (Table 3 budgets
/// 4 bits per entry for the 4-core CMP).
///
/// Tracks which private caches hold a copy of a block and whether one
/// of them holds it modified (MSI's `M` state lives logically at the
/// owner; the directory remembers who the owner is).
///
/// # Example
///
/// ```
/// use dg_cache::Sharers;
/// let mut s = Sharers::new();
/// s.add(0);
/// s.add(2);
/// assert_eq!(s.count(), 2);
/// assert!(s.contains(2));
/// s.set_owner(2);        // core 2 upgrades to Modified
/// assert_eq!(s.owner(), Some(2));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Sharers {
    mask: u8,
    owner: Option<u8>,
}

impl Sharers {
    /// Maximum cores a full-map vector supports here.
    pub const MAX_CORES: usize = 8;

    /// An empty sharer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `core` as a sharer.
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn add(&mut self, core: usize) {
        assert!(core < Self::MAX_CORES);
        self.mask |= 1 << core;
    }

    /// Remove `core` as a sharer (clears ownership if it was the owner).
    pub fn remove(&mut self, core: usize) {
        assert!(core < Self::MAX_CORES);
        self.mask &= !(1 << core);
        if self.owner == Some(core as u8) {
            self.owner = None;
        }
    }

    /// Whether `core` currently shares the block.
    pub fn contains(&self, core: usize) -> bool {
        core < Self::MAX_CORES && self.mask & (1 << core) != 0
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether nobody shares the block.
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Mark `core` as the modified owner (adds it as a sharer too).
    pub fn set_owner(&mut self, core: usize) {
        self.add(core);
        self.owner = Some(core as u8);
    }

    /// The modified owner, if any.
    pub fn owner(&self) -> Option<usize> {
        self.owner.map(|c| c as usize)
    }

    /// Downgrade the owner to a plain sharer (M → S at the owner).
    pub fn clear_owner(&mut self) {
        self.owner = None;
    }

    /// Iterate over sharer core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..Self::MAX_CORES).filter(move |&c| self.contains(c))
    }

    /// Remove everyone.
    pub fn clear(&mut self) {
        self.mask = 0;
        self.owner = None;
    }
}

impl fmt::Debug for Sharers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sharers({:#010b}", self.mask)?;
        if let Some(o) = self.owner {
            write!(f, ", owner={o}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_contains() {
        let mut s = Sharers::new();
        assert!(s.is_empty());
        s.add(1);
        s.add(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(0));
        assert_eq!(s.count(), 2);
        s.remove(1);
        assert!(!s.contains(1));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn owner_lifecycle() {
        let mut s = Sharers::new();
        s.set_owner(2);
        assert_eq!(s.owner(), Some(2));
        assert!(s.contains(2));
        s.clear_owner();
        assert_eq!(s.owner(), None);
        assert!(s.contains(2), "downgrade keeps the sharer");
    }

    #[test]
    fn removing_owner_clears_ownership() {
        let mut s = Sharers::new();
        s.set_owner(2);
        s.remove(2);
        assert_eq!(s.owner(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn iter_ascending() {
        let mut s = Sharers::new();
        s.add(5);
        s.add(0);
        s.add(3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut s = Sharers::new();
        s.set_owner(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.owner(), None);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_core() {
        Sharers::new().add(8);
    }
}
