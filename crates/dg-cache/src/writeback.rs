//! The LLC's buffer of pending DRAM writes.

use dg_mem::{BlockAddr, BlockData};
use std::collections::VecDeque;

/// A FIFO buffer of writebacks queued for main memory.
///
/// The paper notes that a single Doppelgänger data-block replacement may
/// trigger *multiple* DRAM writes (one per dirty tag sharing the entry)
/// and that the data block is only released once all of them are queued
/// into the LLC's writeback buffer (§3.5). This type provides that queue
/// and counts total off-chip write traffic.
///
/// # Example
///
/// ```
/// use dg_cache::WritebackBuffer;
/// use dg_mem::{BlockAddr, BlockData};
/// let mut wb = WritebackBuffer::new();
/// wb.push(BlockAddr(1), BlockData::zeroed());
/// wb.push(BlockAddr(2), BlockData::zeroed());
/// assert_eq!(wb.pending(), 2);
/// let drained = wb.drain_to(|_, _| {});
/// assert_eq!(drained, 2);
/// assert_eq!(wb.total_writebacks(), 2);
/// ```
#[derive(Debug, Default)]
pub struct WritebackBuffer {
    queue: VecDeque<(BlockAddr, BlockData)>,
    total: u64,
}

impl WritebackBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a writeback of `data` to `addr`.
    pub fn push(&mut self, addr: BlockAddr, data: BlockData) {
        self.queue.push_back((addr, data));
        self.total += 1;
    }

    /// Writebacks currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total writebacks ever queued (off-chip write traffic in blocks).
    pub fn total_writebacks(&self) -> u64 {
        self.total
    }

    /// Reset the lifetime writeback counter (pending entries stay
    /// queued) — used by warm-up statistic resets.
    pub fn reset_total(&mut self) {
        self.total = self.queue.len() as u64;
    }

    /// Drain every queued writeback through `sink` (oldest first),
    /// returning how many were drained.
    pub fn drain_to(&mut self, mut sink: impl FnMut(BlockAddr, BlockData)) -> usize {
        let n = self.queue.len();
        for (addr, data) in self.queue.drain(..) {
            sink(addr, data);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut wb = WritebackBuffer::new();
        wb.push(BlockAddr(1), BlockData::zeroed());
        wb.push(BlockAddr(2), BlockData::zeroed());
        let mut order = Vec::new();
        wb.drain_to(|a, _| order.push(a.0));
        assert_eq!(order, vec![1, 2]);
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn total_counts_across_drains() {
        let mut wb = WritebackBuffer::new();
        wb.push(BlockAddr(1), BlockData::zeroed());
        wb.drain_to(|_, _| {});
        wb.push(BlockAddr(2), BlockData::zeroed());
        assert_eq!(wb.total_writebacks(), 2);
        assert_eq!(wb.pending(), 1);
    }

    #[test]
    fn empty_drain_is_zero() {
        let mut wb = WritebackBuffer::new();
        assert_eq!(wb.drain_to(|_, _| {}), 0);
    }
}
