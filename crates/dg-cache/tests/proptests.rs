//! Property tests for the cache substrate (dg-check harness).

use dg_cache::{CacheGeometry, ConventionalCache, Lru, Replacer, TagArray};
use dg_check::{any, props, vec};
use dg_mem::{BlockAddr, BlockData, ElemType};
use std::collections::VecDeque;

fn blk(v: u16) -> BlockData {
    BlockData::from_values(ElemType::I32, &[f64::from(v); 16])
}

/// Reference LRU set-associative cache that always scans the full set —
/// the observable semantics of `ConventionalCache` before MRU way
/// prediction was added. Lines sit in per-set recency order (most
/// recent last), so hits, fills, and LRU evictions are explicit.
struct ScanModel {
    geom: CacheGeometry,
    sets: Vec<Vec<(u64, bool, BlockData)>>,
    hits: u64,
    misses: u64,
}

impl ScanModel {
    fn new(geom: CacheGeometry) -> Self {
        ScanModel { sets: vec![Vec::new(); geom.sets()], geom, hits: 0, misses: 0 }
    }

    fn find(&mut self, addr: BlockAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        self.sets[set].iter().position(|&(t, _, _)| t == tag).map(|i| (set, i))
    }

    fn read(&mut self, addr: BlockAddr) -> Option<BlockData> {
        match self.find(addr) {
            Some((set, i)) => {
                self.hits += 1;
                let line = self.sets[set].remove(i);
                self.sets[set].push(line);
                Some(line.2)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn write(&mut self, addr: BlockAddr, data: BlockData) -> bool {
        match self.find(addr) {
            Some((set, i)) => {
                self.hits += 1;
                let (tag, _, _) = self.sets[set].remove(i);
                self.sets[set].push((tag, true, data));
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    fn fill(&mut self, addr: BlockAddr, data: BlockData) -> Option<(BlockAddr, bool, BlockData)> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        let evicted = if self.sets[set].len() == self.geom.ways() {
            let (t, d, b) = self.sets[set].remove(0);
            Some((self.geom.block_addr(t, set), d, b))
        } else {
            None
        };
        self.sets[set].push((tag, false, data));
        evicted
    }

    fn invalidate(&mut self, addr: BlockAddr) -> Option<(BlockAddr, bool, BlockData)> {
        let (set, i) = self.find(addr)?;
        let (_, d, b) = self.sets[set].remove(i);
        Some((addr, d, b))
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn resident(&self) -> Vec<(u64, bool, BlockData)> {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(set, lines)| {
                lines.iter().map(move |&(t, d, b)| (self.geom.block_addr(t, set).0, d, b))
            })
            .collect()
    }
}

props! {
    /// LRU matches a reference recency-queue model for any touch/victim
    /// interleaving on one set.
    fn lru_matches_reference_model(ops in vec((0usize..8, any::<bool>()), 1..200)) {
        let ways = 8;
        let mut lru = Lru::new(1, ways);
        // Reference: most-recent at the back.
        let mut order: VecDeque<usize> = (0..ways).collect();
        // Prime both with a known order.
        for w in 0..ways {
            lru.touch(0, w);
        }
        for (way, is_touch) in ops {
            if is_touch {
                lru.touch(0, way);
                order.retain(|&w| w != way);
                order.push_back(way);
            } else {
                let victim = lru.victim(0);
                assert_eq!(victim, *order.front().unwrap());
            }
        }
    }

    /// A TagArray never reports more occupancy than its associativity,
    /// and `find` only succeeds for entries that were inserted and not
    /// displaced or invalidated.
    fn tag_array_occupancy_bounds(ops in vec((0u64..64, any::<bool>()), 1..200)) {
        let geom = CacheGeometry::from_entries(16, 4);
        let mut arr: TagArray<u64> = TagArray::new(geom);
        for (tag, insert) in ops {
            let set = (tag % 4) as usize;
            if insert {
                if arr.find(set, |&e| e == tag).is_none() {
                    arr.insert(set, tag);
                }
            } else if let Some(way) = arr.find(set, |&e| e == tag) {
                arr.invalidate(set, way);
            }
            assert!(arr.occupancy(set) <= 4);
        }
        assert!(arr.len() <= 16);
    }

    /// A conventional cache's resident set is always consistent with
    /// its own iterator, and every resident block round-trips its data.
    fn conventional_cache_iterator_consistency(
        ops in vec((0u64..96, any::<u16>()), 1..150),
    ) {
        let mut cache = ConventionalCache::new(CacheGeometry::from_entries(32, 4));
        let mut last_write = std::collections::HashMap::new();
        for (a, v) in ops {
            let addr = BlockAddr(a);
            if cache.contains(addr) {
                cache.write(addr, blk(v));
            } else {
                cache.fill_with(addr, blk(v), true);
            }
            last_write.insert(a, v);
        }
        for (addr, dirty, data) in cache.iter_blocks() {
            assert!(dirty);
            assert!(cache.contains(addr));
            let want = last_write[&addr.0];
            assert_eq!(*data, blk(want), "stale block at {}", addr.0);
        }
    }

    /// Differential check for the MRU-way-prediction fast path: the
    /// cache behaves identically to a reference model that always does
    /// the full set scan (the pre-prediction implementation) — same
    /// hits, same data, same evictions, same stats — under random
    /// interleavings of reads, partial reads/writes, fills and
    /// invalidates that repeatedly alternate between same-line streaks
    /// (prediction hits) and conflicting lines (stale hints).
    fn mru_prediction_matches_full_scan_model(
        ops in vec((0u8..5, 0u64..24, any::<u16>()), 1..250),
    ) {
        // 4 sets x 2 ways: block addresses 0..24 give 3-way conflicts.
        let geom = CacheGeometry::from_entries(8, 2);
        let mut cache = ConventionalCache::new(geom);
        let mut model = ScanModel::new(geom);
        for (op, a, v) in ops {
            let addr = BlockAddr(a);
            match op {
                0 => assert_eq!(cache.read(addr), model.read(addr)),
                1 => {
                    let mut got = [0u8; 8];
                    let hit = cache.read_bytes(addr, 16, &mut got);
                    match model.read(addr) {
                        Some(b) => {
                            assert!(hit);
                            assert_eq!(got, b.as_bytes()[16..24]);
                        }
                        None => assert!(!hit),
                    }
                }
                2 => assert_eq!(cache.write(addr, blk(v)), model.write(addr, blk(v))),
                3 => {
                    if !cache.contains(addr) {
                        let ev = cache.fill(addr, blk(v));
                        let want = model.fill(addr, blk(v));
                        assert_eq!(ev.map(|e| (e.addr, e.dirty, e.data)), want);
                    }
                }
                _ => {
                    let got = cache.invalidate(addr);
                    let want = model.invalidate(addr);
                    assert_eq!(got.map(|e| (e.addr, e.dirty, e.data)), want);
                }
            }
        }
        assert_eq!(cache.stats().hits, model.hits);
        assert_eq!(cache.stats().misses, model.misses);
        assert_eq!(cache.len(), model.len());
        // Identical resident contents.
        let mut got: Vec<(u64, bool, BlockData)> =
            cache.iter_blocks().map(|(a, d, b)| (a.0, d, *b)).collect();
        got.sort_unstable_by_key(|&(a, _, _)| a);
        let mut want = model.resident();
        want.sort_unstable_by_key(|&(a, _, _)| a);
        assert_eq!(got, want);
    }

    /// Geometry round trip: any block address decomposes into
    /// (tag, set) and recomposes exactly, for any power-of-two shape.
    fn geometry_round_trip(addr in any::<u32>(), sets_log in 0u32..12, ways in 1usize..9) {
        let sets = 1usize << sets_log;
        let geom = CacheGeometry::from_entries(sets * ways, ways);
        let block = BlockAddr(u64::from(addr));
        let recomposed = geom.block_addr(geom.tag_of(block), geom.set_of(block));
        assert_eq!(recomposed, block);
    }
}
