//! Property tests for the cache substrate (dg-check harness).

use dg_cache::{CacheGeometry, ConventionalCache, Lru, Replacer, TagArray};
use dg_check::{any, props, vec};
use dg_mem::{BlockAddr, BlockData, ElemType};
use std::collections::VecDeque;

fn blk(v: u16) -> BlockData {
    BlockData::from_values(ElemType::I32, &[f64::from(v); 16])
}

props! {
    /// LRU matches a reference recency-queue model for any touch/victim
    /// interleaving on one set.
    fn lru_matches_reference_model(ops in vec((0usize..8, any::<bool>()), 1..200)) {
        let ways = 8;
        let mut lru = Lru::new(1, ways);
        // Reference: most-recent at the back.
        let mut order: VecDeque<usize> = (0..ways).collect();
        // Prime both with a known order.
        for w in 0..ways {
            lru.touch(0, w);
        }
        for (way, is_touch) in ops {
            if is_touch {
                lru.touch(0, way);
                order.retain(|&w| w != way);
                order.push_back(way);
            } else {
                let victim = lru.victim(0);
                assert_eq!(victim, *order.front().unwrap());
            }
        }
    }

    /// A TagArray never reports more occupancy than its associativity,
    /// and `find` only succeeds for entries that were inserted and not
    /// displaced or invalidated.
    fn tag_array_occupancy_bounds(ops in vec((0u64..64, any::<bool>()), 1..200)) {
        let geom = CacheGeometry::from_entries(16, 4);
        let mut arr: TagArray<u64> = TagArray::new(geom);
        for (tag, insert) in ops {
            let set = (tag % 4) as usize;
            if insert {
                if arr.find(set, |&e| e == tag).is_none() {
                    arr.insert(set, tag);
                }
            } else if let Some(way) = arr.find(set, |&e| e == tag) {
                arr.invalidate(set, way);
            }
            assert!(arr.occupancy(set) <= 4);
        }
        assert!(arr.len() <= 16);
    }

    /// A conventional cache's resident set is always consistent with
    /// its own iterator, and every resident block round-trips its data.
    fn conventional_cache_iterator_consistency(
        ops in vec((0u64..96, any::<u16>()), 1..150),
    ) {
        let mut cache = ConventionalCache::new(CacheGeometry::from_entries(32, 4));
        let mut last_write = std::collections::HashMap::new();
        for (a, v) in ops {
            let addr = BlockAddr(a);
            if cache.contains(addr) {
                cache.write(addr, blk(v));
            } else {
                cache.fill_with(addr, blk(v), true);
            }
            last_write.insert(a, v);
        }
        for (addr, dirty, data) in cache.iter_blocks() {
            assert!(dirty);
            assert!(cache.contains(addr));
            let want = last_write[&addr.0];
            assert_eq!(*data, blk(want), "stale block at {}", addr.0);
        }
    }

    /// Geometry round trip: any block address decomposes into
    /// (tag, set) and recomposes exactly, for any power-of-two shape.
    fn geometry_round_trip(addr in any::<u32>(), sets_log in 0u32..12, ways in 1usize..9) {
        let sets = 1usize << sets_log;
        let geom = CacheGeometry::from_entries(sets * ways, ways);
        let block = BlockAddr(u64::from(addr));
        let recomposed = geom.block_addr(geom.tag_of(block), geom.set_of(block));
        assert_eq!(recomposed, block);
    }
}
