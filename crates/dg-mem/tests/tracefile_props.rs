//! Property tests for the binary trace format: random traces must
//! round-trip losslessly, and *no* byte-level corruption of a valid
//! file may do anything other than parse or return a clean
//! `io::Error` — panics and aborts are format bugs.

use dg_check::{props, vec, Strategy};
use dg_mem::{
    Access, AccessKind, Addr, AnnotationTable, ApproxRegion, BlockAddr, BlockData, ElemType,
    MemoryImage, Trace,
};

/// One raw access: `(addr word, is_store, size-1, think, payload seed)`.
type RawAccess = (u64, u8, u8, u8, u8);

/// Raw trace recipe: annotation count, image blocks, two core streams.
type RawTrace = (u8, Vec<(u64, u8)>, Vec<RawAccess>, Vec<RawAccess>);

fn trace_strategy() -> impl Strategy<Value = RawTrace> {
    (
        0u8..3,                                  // annotated regions
        vec((0u64..256, 0u8..=255), 0..8usize),  // initial image blocks
        vec(raw_access(), 0..24usize),           // core 0
        vec(raw_access(), 0..24usize),           // core 1
    )
}

fn raw_access() -> impl Strategy<Value = RawAccess> {
    (0u64..1 << 20, 0u8..2, 0u8..8, 0u8..5, 0u8..=255)
}

/// Deterministically expand a raw recipe into a `Trace`.
fn build(raw: &RawTrace) -> Trace {
    let (regions, blocks, core0, core1) = raw;
    let mut annots = AnnotationTable::new();
    for i in 0..*regions {
        // Disjoint 4 KiB regions with distinct types and ranges.
        let start = u64::from(i) * 8192;
        let ty = [ElemType::F32, ElemType::F64, ElemType::I32][i as usize % 3];
        annots.add(ApproxRegion::new(Addr(start), 4096, ty, -f64::from(i) - 1.0, f64::from(i)));
    }
    let mut image = MemoryImage::new();
    for &(block, fill) in blocks {
        image.set_block(BlockAddr(block), BlockData::from_bytes([fill; 64]));
    }
    let expand = |stream: &[RawAccess]| {
        stream
            .iter()
            .map(|&(word, is_store, size_m1, think, seed)| {
                let size = size_m1 + 1;
                // Size-aligned addresses keep accesses inside a block.
                let addr = Addr((word * u64::from(size)) % (1 << 24));
                let mut a = if is_store == 1 {
                    Access::new(addr, AccessKind::Store, size).with_data([seed; 8])
                } else {
                    Access::new(addr, AccessKind::Load, size)
                };
                a.think = u32::from(think);
                if annots.is_approx(addr) {
                    a = a.approximate();
                }
                a
            })
            .collect::<Vec<_>>()
    };
    let cores = vec![expand(core0), expand(core1)];
    Trace::new(image, annots, cores)
}

props! {
    fn round_trip_preserves_random_traces(raw in trace_strategy()) {
        let t = build(&raw);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.cores, t.cores);
        assert_eq!(back.annotations.len(), t.annotations.len());
        for (a, b) in back.annotations.iter().zip(t.annotations.iter()) {
            assert_eq!((a.start, a.len, a.ty, a.min.to_bits(), a.max.to_bits()),
                       (b.start, b.len, b.ty, b.min.to_bits(), b.max.to_bits()));
        }
        let img_a: Vec<_> = back.initial.iter_blocks().map(|(a, d)| (a, *d)).collect();
        let img_b: Vec<_> = t.initial.iter_blocks().map(|(a, d)| (a, *d)).collect();
        assert_eq!(img_a, img_b);
    }

    fn byte_mutations_never_panic(
        raw in trace_strategy(),
        mutations in vec((0u32..1 << 16, 0u8..=255), 1..5usize),
    ) {
        let t = build(&raw);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        for &(pos, byte) in &mutations {
            let pos = pos as usize % buf.len();
            buf[pos] = byte;
        }
        // Corrupt input must parse or fail cleanly — any panic fails
        // the property via the harness.
        let _ = Trace::read_from(&mut buf.as_slice());
    }

    fn truncations_of_random_traces_fail_cleanly(
        raw in trace_strategy(),
        cut in 0u32..1 << 16,
    ) {
        let t = build(&raw);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let cut = cut as usize % buf.len();
        assert!(Trace::read_from(&mut &buf[..cut]).is_err());
    }
}
