//! Property tests for the memory substrate (dg-check harness).

use dg_check::{any, props, vec};
use dg_mem::{
    Access, AccessKind, Addr, AnnotationTable, BlockData, ElemType, Memory, MemoryImage, Trace,
};

/// Raw tuple a random access is built from; kept as plain data so the
/// harness can shrink it component-wise.
type RawAccess = (u32, bool, u8, bool, u32, [u8; 8]);

fn build_access((addr, is_store, size, approx, think, data): RawAccess) -> Access {
    // Keep the access inside one block.
    let addr = Addr(u64::from(addr) & !7);
    let mut a = Access::new(
        addr,
        if is_store { AccessKind::Store } else { AccessKind::Load },
        size,
    );
    a.approx = approx;
    a.think = think;
    if is_store {
        a = a.with_data(data);
    }
    a
}

fn raw_access_strategy() -> impl dg_check::Strategy<Value = RawAccess> {
    (
        any::<u32>(),
        any::<bool>(),
        1u8..=8,
        any::<bool>(),
        any::<u32>(),
        any::<[u8; 8]>(),
    )
}

props! {
    /// Encoding then decoding any representable value is the identity
    /// for every element type (within the type's precision).
    fn elem_round_trip_f32(v in any::<f32>()) {
        dg_check::assume!(v.is_finite());
        let mut b = [0u8; 4];
        ElemType::F32.encode(f64::from(v), &mut b);
        assert_eq!(ElemType::F32.decode(&b) as f32, v);
    }

    fn elem_round_trip_i32(v in any::<i32>()) {
        let mut b = [0u8; 4];
        ElemType::I32.encode(f64::from(v), &mut b);
        assert_eq!(ElemType::I32.decode(&b) as i32, v);
    }

    fn elem_round_trip_u8(v in any::<u8>()) {
        let mut b = [0u8; 1];
        ElemType::U8.encode(f64::from(v), &mut b);
        assert_eq!(ElemType::U8.decode(&b) as u8, v);
    }

    /// Block statistics agree with a straightforward recomputation.
    fn block_stats_match_manual(vals in vec(-1.0e6f64..1.0e6, 16usize)) {
        let vals: Vec<f64> = vals.into_iter().map(|v| f64::from(v as f32)).collect();
        let b = BlockData::from_values(ElemType::F32, &vals);
        let s = b.stats(ElemType::F32);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min, min);
        assert_eq!(s.max, max);
        assert!((s.sum - vals.iter().sum::<f64>()).abs() < 1e-6 * (1.0 + s.sum.abs()));
        assert_eq!(s.count, 16);
    }

    /// Approximate similarity at threshold t implies similarity at any
    /// larger threshold (monotonicity in T — the premise of Fig. 2).
    fn approx_similarity_monotone_in_threshold(
        a in vec(0.0f64..255.0, 16usize),
        b in vec(0.0f64..255.0, 16usize),
        t in 0.0f64..0.5,
    ) {
        let ba = BlockData::from_values(ElemType::F32, &a);
        let bb = BlockData::from_values(ElemType::F32, &b);
        if ba.approx_similar(&bb, ElemType::F32, t, 255.0) {
            assert!(ba.approx_similar(&bb, ElemType::F32, t * 2.0, 255.0));
            assert!(ba.approx_similar(&bb, ElemType::F32, 1.0, 255.0));
        }
    }

    /// A memory image is a map: the last store to an address wins.
    fn image_last_store_wins(ops in vec((0u64..128, any::<u32>()), 1..100)) {
        let mut image = MemoryImage::new();
        let mut model = std::collections::HashMap::new();
        for (slot, v) in ops {
            image.store_i32(Addr(slot * 4), v as i32);
            model.insert(slot, v as i32);
        }
        for (slot, v) in model {
            assert_eq!(image.load_i32(Addr(slot * 4)), v);
        }
    }

    /// The paged-arena image is observationally identical to a plain
    /// hashmap model under random streams of block stores, partial
    /// writes, full-block reads, and byte loads. Addresses are drawn so
    /// streams hit within pages, across pages, and far apart (sparse).
    fn image_matches_hashmap_model(
        ops in vec((0u8..4, 0u64..0x300, 0u8..56, any::<[u8; 8]>()), 1..200),
    ) {
        let mut image = MemoryImage::new();
        // Reference model: block address -> 64-byte contents.
        let mut model: std::collections::HashMap<u64, [u8; 64]> =
            std::collections::HashMap::new();
        for (op, raw_block, off, bytes) in ops {
            // Spread some blocks far apart so many pages exist.
            let block = if raw_block >= 0x200 { raw_block * 977 } else { raw_block };
            let addr = Addr(block * 64);
            match op {
                0 => {
                    // Full-block overwrite.
                    let mut full = [0u8; 64];
                    for (i, chunk) in full.chunks_mut(8).enumerate() {
                        chunk.copy_from_slice(&bytes.map(|b| b.wrapping_add(i as u8)));
                    }
                    image.set_block(addr.block(), BlockData::from_bytes(full));
                    model.insert(block, full);
                }
                1 => {
                    // Partial-block store at a random offset.
                    image.store_bytes(Addr(addr.0 + u64::from(off)), &bytes);
                    let entry = model.entry(block).or_insert([0u8; 64]);
                    entry[off as usize..off as usize + 8].copy_from_slice(&bytes);
                }
                2 => {
                    // Byte load (possibly from a never-written block).
                    let mut got = [0u8; 8];
                    image.load_bytes(Addr(addr.0 + u64::from(off)), &mut got);
                    let want = model.get(&block).copied().unwrap_or([0u8; 64]);
                    assert_eq!(got, want[off as usize..off as usize + 8]);
                }
                _ => {
                    // Full-block read through the shared accessor.
                    let want = model.get(&block).copied().unwrap_or([0u8; 64]);
                    assert_eq!(image.block(addr.block()).as_bytes(), &want);
                }
            }
        }
        // Aggregate views agree: population count and iter_blocks
        // contents (the arena yields ascending address order).
        assert_eq!(image.populated_blocks(), model.len());
        let mut want: Vec<(u64, [u8; 64])> = model.into_iter().collect();
        want.sort_unstable_by_key(|&(b, _)| b);
        let got: Vec<(u64, [u8; 64])> =
            image.iter_blocks().map(|(a, d)| (a.0, *d.as_bytes())).collect();
        assert_eq!(got, want);
    }

    /// Trace binary serialization round-trips arbitrary traces.
    fn trace_serialization_round_trips(
        streams in vec(vec(raw_access_strategy(), 0..30), 1..4),
        blocks in vec((0u64..1000, any::<[u8; 8]>()), 0..10),
    ) {
        let mut image = MemoryImage::new();
        for (b, bytes) in blocks {
            image.store_bytes(Addr(b * 64), &bytes);
        }
        let t = Trace::new(
            image,
            AnnotationTable::new(),
            streams
                .into_iter()
                .map(|s| s.into_iter().map(build_access).collect())
                .collect(),
        );
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.cores, t.cores);
        assert_eq!(back.initial.populated_blocks(), t.initial.populated_blocks());
    }

    /// The round-robin interleaver emits every access exactly once and
    /// preserves per-core order.
    fn interleaver_is_a_fair_permutation(lens in vec(0usize..20, 1..5)) {
        let cores: Vec<Vec<Access>> = lens
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..n)
                    .map(|i| Access::new(Addr((c * 1000 + i) as u64), AccessKind::Load, 4))
                    .collect()
            })
            .collect();
        let trace = Trace::new(MemoryImage::new(), AnnotationTable::new(), cores.clone());
        let emitted: Vec<(usize, u64)> =
            trace.interleaved().map(|(c, a)| (c, a.addr.0)).collect();
        assert_eq!(emitted.len(), lens.iter().sum::<usize>());
        // Per-core subsequences appear in order.
        for (c, stream) in cores.iter().enumerate() {
            let seen: Vec<u64> = emitted
                .iter()
                .filter(|(ec, _)| *ec == c)
                .map(|(_, a)| *a)
                .collect();
            let want: Vec<u64> = stream.iter().map(|a| a.addr.0).collect();
            assert_eq!(seen, want);
        }
    }
}
