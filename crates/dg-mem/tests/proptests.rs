//! Property tests for the memory substrate.

use dg_mem::{
    Access, AccessKind, Addr, AnnotationTable, BlockData, ElemType, Memory, MemoryImage, Trace,
};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (
        any::<u32>(),
        any::<bool>(),
        1u8..=8,
        any::<bool>(),
        any::<u32>(),
        any::<[u8; 8]>(),
    )
        .prop_map(|(addr, is_store, size, approx, think, data)| {
            // Keep the access inside one block.
            let addr = Addr((addr as u64) & !7);
            let mut a = Access::new(
                addr,
                if is_store { AccessKind::Store } else { AccessKind::Load },
                size,
            );
            a.approx = approx;
            a.think = think;
            if is_store {
                a = a.with_data(data);
            }
            a
        })
}

proptest! {
    /// Encoding then decoding any representable value is the identity
    /// for every element type (within the type's precision).
    #[test]
    fn elem_round_trip_f32(v in any::<f32>()) {
        prop_assume!(v.is_finite());
        let mut b = [0u8; 4];
        ElemType::F32.encode(v as f64, &mut b);
        prop_assert_eq!(ElemType::F32.decode(&b) as f32, v);
    }

    #[test]
    fn elem_round_trip_i32(v in any::<i32>()) {
        let mut b = [0u8; 4];
        ElemType::I32.encode(v as f64, &mut b);
        prop_assert_eq!(ElemType::I32.decode(&b) as i32, v);
    }

    #[test]
    fn elem_round_trip_u8(v in any::<u8>()) {
        let mut b = [0u8; 1];
        ElemType::U8.encode(v as f64, &mut b);
        prop_assert_eq!(ElemType::U8.decode(&b) as u8, v);
    }

    /// Block statistics agree with a straightforward recomputation.
    #[test]
    fn block_stats_match_manual(vals in prop::collection::vec(-1.0e6f64..1.0e6, 16)) {
        let vals: Vec<f64> = vals.into_iter().map(|v| (v as f32) as f64).collect();
        let b = BlockData::from_values(ElemType::F32, &vals);
        let s = b.stats(ElemType::F32);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!((s.sum - vals.iter().sum::<f64>()).abs() < 1e-6 * (1.0 + s.sum.abs()));
        prop_assert_eq!(s.count, 16);
    }

    /// Approximate similarity at threshold t implies similarity at any
    /// larger threshold (monotonicity in T — the premise of Fig. 2).
    #[test]
    fn approx_similarity_monotone_in_threshold(
        a in prop::collection::vec(0.0f64..255.0, 16),
        b in prop::collection::vec(0.0f64..255.0, 16),
        t in 0.0f64..0.5
    ) {
        let ba = BlockData::from_values(ElemType::F32, &a);
        let bb = BlockData::from_values(ElemType::F32, &b);
        if ba.approx_similar(&bb, ElemType::F32, t, 255.0) {
            prop_assert!(ba.approx_similar(&bb, ElemType::F32, t * 2.0, 255.0));
            prop_assert!(ba.approx_similar(&bb, ElemType::F32, 1.0, 255.0));
        }
    }

    /// A memory image is a map: the last store to an address wins.
    #[test]
    fn image_last_store_wins(ops in prop::collection::vec((0u64..128, any::<u32>()), 1..100)) {
        let mut image = MemoryImage::new();
        let mut model = std::collections::HashMap::new();
        for (slot, v) in ops {
            image.store_i32(Addr(slot * 4), v as i32);
            model.insert(slot, v as i32);
        }
        for (slot, v) in model {
            prop_assert_eq!(image.load_i32(Addr(slot * 4)), v);
        }
    }

    /// Trace binary serialization round-trips arbitrary traces.
    #[test]
    fn trace_serialization_round_trips(
        streams in prop::collection::vec(prop::collection::vec(arb_access(), 0..30), 1..4),
        blocks in prop::collection::vec((0u64..1000, any::<[u8; 8]>()), 0..10)
    ) {
        let mut image = MemoryImage::new();
        for (b, bytes) in blocks {
            image.store_bytes(Addr(b * 64), &bytes);
        }
        let t = Trace {
            initial: image,
            annotations: AnnotationTable::new(),
            cores: streams,
        };
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.cores, t.cores);
        prop_assert_eq!(back.initial.populated_blocks(), t.initial.populated_blocks());
    }

    /// The round-robin interleaver emits every access exactly once and
    /// preserves per-core order.
    #[test]
    fn interleaver_is_a_fair_permutation(lens in prop::collection::vec(0usize..20, 1..5)) {
        let cores: Vec<Vec<Access>> = lens
            .iter()
            .enumerate()
            .map(|(c, &n)| {
                (0..n)
                    .map(|i| Access::new(Addr((c * 1000 + i) as u64), AccessKind::Load, 4))
                    .collect()
            })
            .collect();
        let trace = Trace {
            initial: MemoryImage::new(),
            annotations: AnnotationTable::new(),
            cores: cores.clone(),
        };
        let emitted: Vec<(usize, u64)> =
            trace.interleaved().map(|(c, a)| (c, a.addr.0)).collect();
        prop_assert_eq!(emitted.len(), lens.iter().sum::<usize>());
        // Per-core subsequences appear in order.
        for (c, stream) in cores.iter().enumerate() {
            let seen: Vec<u64> = emitted
                .iter()
                .filter(|(ec, _)| *ec == c)
                .map(|(_, a)| *a)
                .collect();
            let want: Vec<u64> = stream.iter().map(|a| a.addr.0).collect();
            prop_assert_eq!(seen, want);
        }
    }
}
