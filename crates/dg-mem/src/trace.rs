//! Multi-core memory-access traces.

use crate::{Access, AnnotationTable, MemoryImage};
use std::sync::OnceLock;

/// Cursor storage for [`InterleavedIter`]: stack-allocated up to this
/// many cores, heap-allocated beyond.
const INLINE_CORES: usize = 8;

/// A complete multi-core trace: an initial memory image, the
/// per-application annotation table, and one access stream per core.
///
/// The timing simulator (`dg-system`) replays the per-core streams
/// round-robin at access granularity against a simulated hierarchy,
/// applying store payloads to its memory image as it goes.
///
/// Construct with [`Trace::new`] or [`TraceBuilder`]; the streams stay
/// readable through the public `cores` field but are immutable once
/// built (the instruction count is cached on first query).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Memory contents at the start of the trace.
    pub initial: MemoryImage,
    /// The application's approximate-region annotations.
    pub annotations: AnnotationTable,
    /// Per-core access streams.
    pub cores: Vec<Vec<Access>>,
    /// Lazily computed instruction total. Sound because `cores` cannot
    /// be mutated outside this module once the trace is built.
    insts: OnceLock<u64>,
}

impl Trace {
    /// Assemble a trace from its parts.
    pub fn new(initial: MemoryImage, annotations: AnnotationTable, cores: Vec<Vec<Access>>) -> Self {
        Trace { initial, annotations, cores, insts: OnceLock::new() }
    }

    /// Total number of accesses across all cores.
    pub fn len(&self) -> usize {
        self.cores.iter().map(Vec::len).sum()
    }

    /// Whether the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.cores.iter().all(Vec::is_empty)
    }

    /// Total simulated instructions (memory accesses + think ops),
    /// used for MPKI and runtime-per-instruction normalization.
    ///
    /// Computed once and cached; repeat calls are O(1).
    pub fn instructions(&self) -> u64 {
        *self.insts.get_or_init(|| {
            self.cores
                .iter()
                .flatten()
                .map(|a| 1 + a.think as u64)
                .sum()
        })
    }

    /// Iterate over `(core, access)` pairs, interleaving cores
    /// round-robin one access at a time.
    pub fn interleaved(&self) -> InterleavedIter<'_> {
        InterleavedIter { trace: self, cursors: Cursors::new(self.cores.len()), next_core: 0 }
    }
}

/// Per-core cursors, inline for the common small-core-count case so
/// [`Trace::interleaved`] allocates nothing for up to [`INLINE_CORES`]
/// cores.
#[derive(Debug)]
enum Cursors {
    Inline([usize; INLINE_CORES]),
    Spill(Vec<usize>),
}

impl Cursors {
    fn new(cores: usize) -> Self {
        if cores <= INLINE_CORES {
            Cursors::Inline([0; INLINE_CORES])
        } else {
            Cursors::Spill(vec![0; cores])
        }
    }

    #[inline]
    fn get(&self, core: usize) -> usize {
        match self {
            Cursors::Inline(a) => a[core],
            Cursors::Spill(v) => v[core],
        }
    }

    #[inline]
    fn bump(&mut self, core: usize) {
        match self {
            Cursors::Inline(a) => a[core] += 1,
            Cursors::Spill(v) => v[core] += 1,
        }
    }
}

/// Round-robin interleaving iterator over a [`Trace`]'s cores.
///
/// Produced by [`Trace::interleaved`]. Cores that run out of accesses are
/// skipped; iteration ends when every core is exhausted.
#[derive(Debug)]
pub struct InterleavedIter<'a> {
    trace: &'a Trace,
    cursors: Cursors,
    next_core: usize,
}

impl<'a> Iterator for InterleavedIter<'a> {
    type Item = (usize, &'a Access);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.trace.cores.len();
        for probe in 0..n {
            let core = (self.next_core + probe) % n;
            let cur = self.cursors.get(core);
            if cur < self.trace.cores[core].len() {
                self.cursors.bump(core);
                self.next_core = (core + 1) % n;
                return Some((core, &self.trace.cores[core][cur]));
            }
        }
        None
    }
}

/// Incrementally builds a [`Trace`] from per-core recording sessions.
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, AccessKind, Access, AnnotationTable, MemoryImage, TraceBuilder};
/// let mut b = TraceBuilder::new(MemoryImage::new(), AnnotationTable::new(), 2);
/// b.push(0, Access::new(Addr(0), AccessKind::Load, 4));
/// b.push(1, Access::new(Addr(64), AccessKind::Load, 4));
/// let trace = b.build();
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Start a trace with the given initial image and annotations for
    /// `cores` cores.
    pub fn new(initial: MemoryImage, annotations: AnnotationTable, cores: usize) -> Self {
        TraceBuilder {
            trace: Trace::new(initial, annotations, vec![Vec::new(); cores]),
        }
    }

    /// Append one access to `core`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn push(&mut self, core: usize, access: Access) {
        self.trace.cores[core].push(access);
    }

    /// Append a whole stream to `core`.
    pub fn extend(&mut self, core: usize, accesses: impl IntoIterator<Item = Access>) {
        self.trace.cores[core].extend(accesses);
    }

    /// Finish building.
    pub fn build(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, Addr};

    fn acc(a: u64) -> Access {
        Access::new(Addr(a), AccessKind::Load, 4)
    }

    fn trace_with(cores: Vec<Vec<Access>>) -> Trace {
        Trace::new(MemoryImage::new(), AnnotationTable::new(), cores)
    }

    #[test]
    fn len_and_instructions() {
        let mut a0 = acc(0);
        a0.think = 9;
        let t = trace_with(vec![vec![a0, acc(64)], vec![acc(128)]]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        // 3 accesses + 9 think ops.
        assert_eq!(t.instructions(), 12);
    }

    #[test]
    fn interleaves_round_robin() {
        let t = trace_with(vec![
            vec![acc(0), acc(1), acc(2)],
            vec![acc(100)],
            vec![acc(200), acc(201)],
        ]);
        let order: Vec<(usize, u64)> = t.interleaved().map(|(c, a)| (c, a.addr.0)).collect();
        assert_eq!(
            order,
            vec![(0, 0), (1, 100), (2, 200), (0, 1), (2, 201), (0, 2)]
        );
    }

    #[test]
    fn empty_trace() {
        let t = trace_with(vec![vec![], vec![]]);
        assert!(t.is_empty());
        assert_eq!(t.interleaved().count(), 0);
    }

    #[test]
    fn instructions_cached_and_stable() {
        let t = trace_with(vec![vec![acc(0), acc(64)], vec![acc(128)]]);
        let first = t.instructions();
        assert_eq!(first, 3);
        assert_eq!(t.instructions(), first);
        // The cache travels with clones.
        assert_eq!(t.clone().instructions(), first);
    }

    #[test]
    fn interleaves_beyond_inline_core_count() {
        // More cores than the inline cursor capacity exercises Spill.
        let n = INLINE_CORES + 3;
        let cores: Vec<Vec<Access>> = (0..n).map(|c| vec![acc(c as u64 * 64)]).collect();
        let t = trace_with(cores);
        let order: Vec<usize> = t.interleaved().map(|(c, _)| c).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn builder_routes_to_cores() {
        let mut b = TraceBuilder::new(MemoryImage::new(), AnnotationTable::new(), 4);
        b.push(3, acc(7));
        b.extend(0, vec![acc(1), acc(2)]);
        let t = b.build();
        assert_eq!(t.cores[0].len(), 2);
        assert_eq!(t.cores[3].len(), 1);
        assert_eq!(t.len(), 3);
    }
}
