//! Programmer annotations of approximate address-space regions.

use crate::{Addr, ElemType};
use std::fmt;

/// One annotated approximate region of the address space (§4.1).
///
/// The programmer declares which data can be approximated, the element
/// data type, and the expected range of values (`min`, `max`). The range
/// is conservative: runtime values outside it are clamped (§4.1).
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, ApproxRegion, ElemType};
/// let pixels = ApproxRegion::new(Addr(0x1000), 4096, ElemType::U8, 0.0, 255.0);
/// assert!(pixels.contains(Addr(0x1800)));
/// assert_eq!(pixels.clamp(300.0), 255.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxRegion {
    /// First byte of the region.
    pub start: Addr,
    /// Length in bytes.
    pub len: u64,
    /// Element data type of the region.
    pub ty: ElemType,
    /// Smallest expected element value.
    pub min: f64,
    /// Largest expected element value.
    pub max: f64,
}

impl ApproxRegion {
    /// Create a region.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `len == 0`.
    pub fn new(start: Addr, len: u64, ty: ElemType, min: f64, max: f64) -> Self {
        assert!(min <= max, "annotation range must satisfy min <= max");
        assert!(len > 0, "annotation region must be non-empty");
        ApproxRegion { start, len, ty, min, max }
    }

    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }

    /// One past the last byte of the region.
    #[inline]
    pub fn end(&self) -> Addr {
        Addr(self.start.0 + self.len)
    }

    /// Width of the annotated value range (`max − min`).
    #[inline]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Clamp a runtime value into the annotated range (§4.1).
    #[inline]
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.min, self.max)
    }
}

impl fmt::Display for ApproxRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}) {} in [{}, {}]",
            self.start,
            self.end(),
            self.ty,
            self.min,
            self.max
        )
    }
}

/// The set of annotated regions for an application.
///
/// This models the small buffer at the LLC that stores the per-application
/// range information sent once at program start (§4.1). Lookup answers,
/// for a given address, whether the access is approximate and under which
/// annotation.
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, AnnotationTable, ApproxRegion, ElemType};
/// let mut t = AnnotationTable::new();
/// t.add(ApproxRegion::new(Addr(0), 64, ElemType::F32, 0.0, 1.0));
/// assert!(t.lookup(Addr(4)).is_some());
/// assert!(t.lookup(Addr(64)).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnnotationTable {
    regions: Vec<ApproxRegion>,
}

impl AnnotationTable {
    /// An empty table (fully precise application).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a region, keeping the table sorted by start address.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one.
    pub fn add(&mut self, region: ApproxRegion) {
        let pos = self
            .regions
            .partition_point(|r| r.start.0 < region.start.0);
        if pos > 0 {
            assert!(
                self.regions[pos - 1].end().0 <= region.start.0,
                "annotated regions must not overlap"
            );
        }
        if pos < self.regions.len() {
            assert!(
                region.end().0 <= self.regions[pos].start.0,
                "annotated regions must not overlap"
            );
        }
        self.regions.insert(pos, region);
    }

    /// The annotation covering `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&ApproxRegion> {
        let pos = self.regions.partition_point(|r| r.start.0 <= addr.0);
        if pos == 0 {
            return None;
        }
        let r = &self.regions[pos - 1];
        r.contains(addr).then_some(r)
    }

    /// Whether `addr` is annotated approximate.
    #[inline]
    pub fn is_approx(&self, addr: Addr) -> bool {
        self.lookup(addr).is_some()
    }

    /// Iterate over all regions in address order.
    pub fn iter(&self) -> impl Iterator<Item = &ApproxRegion> {
        self.regions.iter()
    }

    /// Number of annotated regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are annotated.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

impl FromIterator<ApproxRegion> for AnnotationTable {
    fn from_iter<I: IntoIterator<Item = ApproxRegion>>(iter: I) -> Self {
        let mut t = AnnotationTable::new();
        for r in iter {
            t.add(r);
        }
        t
    }
}

impl Extend<ApproxRegion> for AnnotationTable {
    fn extend<I: IntoIterator<Item = ApproxRegion>>(&mut self, iter: I) {
        for r in iter {
            self.add(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, len: u64) -> ApproxRegion {
        ApproxRegion::new(Addr(start), len, ElemType::F32, -1.0, 1.0)
    }

    #[test]
    fn contains_and_end() {
        let r = region(100, 50);
        assert!(r.contains(Addr(100)));
        assert!(r.contains(Addr(149)));
        assert!(!r.contains(Addr(150)));
        assert!(!r.contains(Addr(99)));
        assert_eq!(r.end(), Addr(150));
    }

    #[test]
    fn clamp_values() {
        let r = region(0, 10);
        assert_eq!(r.clamp(2.0), 1.0);
        assert_eq!(r.clamp(-2.0), -1.0);
        assert_eq!(r.clamp(0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn rejects_inverted_range() {
        ApproxRegion::new(Addr(0), 1, ElemType::F32, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_region() {
        ApproxRegion::new(Addr(0), 0, ElemType::F32, 0.0, 1.0);
    }

    #[test]
    fn table_lookup_sorted_inserts() {
        let mut t = AnnotationTable::new();
        t.add(region(200, 10));
        t.add(region(0, 10));
        t.add(region(100, 10));
        assert_eq!(t.len(), 3);
        assert!(t.is_approx(Addr(5)));
        assert!(t.is_approx(Addr(105)));
        assert!(t.is_approx(Addr(205)));
        assert!(!t.is_approx(Addr(50)));
        assert!(!t.is_approx(Addr(210)));
        // Regions come back in address order.
        let starts: Vec<u64> = t.iter().map(|r| r.start.0).collect();
        assert_eq!(starts, vec![0, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn table_rejects_overlap() {
        let mut t = AnnotationTable::new();
        t.add(region(0, 100));
        t.add(region(50, 10));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn table_rejects_overlap_before() {
        let mut t = AnnotationTable::new();
        t.add(region(50, 10));
        t.add(region(0, 51));
    }

    #[test]
    fn adjacent_regions_allowed() {
        let mut t = AnnotationTable::new();
        t.add(region(0, 10));
        t.add(region(10, 10));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_iterator() {
        let t: AnnotationTable = [region(0, 10), region(20, 10)].into_iter().collect();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_is_precise() {
        let t = AnnotationTable::new();
        assert!(t.is_empty());
        assert!(!t.is_approx(Addr(0)));
    }
}
