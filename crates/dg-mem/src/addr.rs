//! Physical addresses and cache-block addresses.

use std::fmt;

/// Size of a cache block in bytes (64 B throughout the paper).
pub const BLOCK_BYTES: usize = 64;

/// Number of block-offset bits (`log2(BLOCK_BYTES)`).
pub const BLOCK_OFFSET_BITS: u32 = BLOCK_BYTES.trailing_zeros();

/// A byte-granularity physical address.
///
/// The paper assumes a 32-bit physical address space (Table 3); we store
/// addresses in a `u64` but the simulated configurations never exceed
/// 32 bits.
///
/// # Example
///
/// ```
/// use dg_mem::Addr;
/// let a = Addr(0x1234);
/// assert_eq!(a.block().base(), Addr(0x1200));
/// assert_eq!(a.block_offset(), 0x34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache-block address containing this byte address.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_OFFSET_BITS)
    }

    /// Byte offset of this address within its cache block.
    #[inline]
    pub fn block_offset(self) -> usize {
        (self.0 & (BLOCK_BYTES as u64 - 1)) as usize
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A block-granularity address: the physical address shifted right by
/// [`BLOCK_OFFSET_BITS`].
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, BlockAddr};
/// let b = BlockAddr(2);
/// assert_eq!(b.base(), Addr(128));
/// assert_eq!(Addr(129).block(), b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first byte address of this block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << BLOCK_OFFSET_BITS)
    }

    /// Set index for a cache with `sets` sets (must be a power of two).
    #[inline]
    pub fn set_index(self, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two());
        (self.0 as usize) & (sets - 1)
    }

    /// Tag bits for a cache with `sets` sets (must be a power of two).
    #[inline]
    pub fn tag(self, sets: usize) -> u64 {
        debug_assert!(sets.is_power_of_two());
        self.0 >> sets.trailing_zeros()
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_bytes_is_64() {
        assert_eq!(BLOCK_BYTES, 64);
        assert_eq!(BLOCK_OFFSET_BITS, 6);
    }

    #[test]
    fn addr_block_round_trip() {
        let a = Addr(0xdead_beef);
        assert_eq!(a.block().base().0, 0xdead_beef_u64 & !63);
        assert_eq!(a.block_offset(), (0xdead_beef_u64 & 63) as usize);
    }

    #[test]
    fn addr_offset_advances() {
        assert_eq!(Addr(10).offset(54), Addr(64));
        assert_eq!(Addr(10).offset(54).block(), BlockAddr(1));
    }

    #[test]
    fn set_index_and_tag_partition_block_address() {
        let b = BlockAddr(0b1011_0110);
        let sets = 16;
        assert_eq!(b.set_index(sets), 0b0110);
        assert_eq!(b.tag(sets), 0b1011);
        // Recombining tag and index yields the original block address.
        assert_eq!((b.tag(sets) << 4) | b.set_index(sets) as u64, b.0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", Addr(0)).is_empty());
        assert!(!format!("{:?}", BlockAddr(0)).is_empty());
    }

    #[test]
    fn from_u64() {
        assert_eq!(Addr::from(7u64), Addr(7));
    }
}
