//! Memory substrate for the Doppelgänger cache reproduction.
//!
//! This crate provides the value-carrying foundation every other crate in
//! the workspace builds on:
//!
//! * [`Addr`] / [`BlockAddr`] — typed physical addresses and 64-byte
//!   cache-block addresses.
//! * [`ElemType`] — the numerical element types the paper approximates
//!   (`u8`, `i32`, `f32`, `f64`) together with typed views over raw block
//!   bytes.
//! * [`BlockData`] — a 64-byte cache block with typed element access and
//!   the value statistics (average, range) that Doppelgänger's map
//!   generation hashes.
//! * [`ApproxRegion`] / [`AnnotationTable`] — the programmer annotations
//!   of the paper (§4.1): which address ranges are approximate, their
//!   element type, and the expected `min`/`max` value range.
//! * [`MemoryImage`] — a sparse functional main-memory image.
//! * [`Memory`] — the load/store interface workload kernels execute
//!   against (precise image, recording wrapper, or a functional cache
//!   model from `dg-system`).
//! * [`Access`] / [`Trace`] — memory-access records and multi-core traces
//!   consumed by the timing simulator.
//!
//! # Example
//!
//! ```
//! use dg_mem::{Addr, ElemType, MemoryImage, Memory};
//!
//! let mut image = MemoryImage::new();
//! image.store_f32(Addr(0x1000), 1.5);
//! assert_eq!(image.load_f32(Addr(0x1000)), 1.5);
//!
//! let block = image.block(Addr(0x1000).block());
//! let stats = block.stats(ElemType::F32);
//! assert!(stats.max >= 1.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod addr;
mod alloc;
mod annot;
mod block;
mod elem;
mod image;
mod memory;
pub mod stream;
pub mod synth;
mod trace;
mod tracefile;

pub use access::{Access, AccessKind};
pub use addr::{Addr, BlockAddr, BLOCK_BYTES, BLOCK_OFFSET_BITS};
pub use alloc::AddressSpace;
pub use annot::{AnnotationTable, ApproxRegion};
pub use block::{BlockData, BlockStats};
pub use elem::ElemType;
pub use image::MemoryImage;
pub use memory::{Memory, RecordingMemory};
pub use stream::{
    stream_trace, StreamChunk, SynthPattern, SynthStream, TenantSpec, TraceStream, STREAM_CHUNK,
};
pub use trace::{InterleavedIter, Trace, TraceBuilder};
