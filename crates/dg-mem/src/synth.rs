//! Synthetic access-pattern generators.
//!
//! Classic cache-characterization patterns (sequential streams, strided
//! walks, uniform and Zipfian random references, pointer chases) for
//! exercising the cache substrate independently of the workload
//! kernels. All generators are deterministic in their seed via an
//! internal splitmix64 generator — no external RNG state.

use crate::{Access, AccessKind, Addr, BLOCK_BYTES};

/// A tiny deterministic PRNG (splitmix64) for the generators.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn read4(addr: u64) -> Access {
    Access::new(Addr(addr), AccessKind::Load, 4)
}

/// A sequential read stream over `blocks` consecutive blocks, repeated
/// until `accesses` accesses are emitted (one access per block visit).
pub fn sequential(base: Addr, blocks: u64, accesses: usize) -> Vec<Access> {
    assert!(blocks > 0);
    (0..accesses)
        .map(|i| read4(base.0 + (i as u64 % blocks) * BLOCK_BYTES as u64))
        .collect()
}

/// A strided walk: every `stride_blocks`-th block over a universe of
/// `blocks`, wrapping around.
pub fn strided(base: Addr, blocks: u64, stride_blocks: u64, accesses: usize) -> Vec<Access> {
    assert!(blocks > 0 && stride_blocks > 0);
    (0..accesses)
        .map(|i| {
            let b = (i as u64 * stride_blocks) % blocks;
            read4(base.0 + b * BLOCK_BYTES as u64)
        })
        .collect()
}

/// Uniform random reads over `blocks` blocks.
pub fn uniform_random(base: Addr, blocks: u64, accesses: usize, seed: u64) -> Vec<Access> {
    let mut rng = SplitMix64::new(seed);
    (0..accesses)
        .map(|_| read4(base.0 + rng.below(blocks) * BLOCK_BYTES as u64))
        .collect()
}

/// Zipfian random reads: block `k` is referenced with probability
/// proportional to `1/(k+1)^theta` — the classic skewed-popularity
/// pattern (hot blocks get most references).
pub fn zipfian(base: Addr, blocks: u64, accesses: usize, theta: f64, seed: u64) -> Vec<Access> {
    assert!(blocks > 0 && theta >= 0.0);
    // Precompute the CDF (fine for the universes used in benches/tests).
    let weights: Vec<f64> = (0..blocks).map(|k| 1.0 / ((k + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(blocks as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = SplitMix64::new(seed);
    (0..accesses)
        .map(|_| {
            let u = rng.unit();
            let k = cdf.partition_point(|&c| c < u) as u64;
            read4(base.0 + k.min(blocks - 1) * BLOCK_BYTES as u64)
        })
        .collect()
}

/// A pointer chase: a random cyclic permutation over `blocks` blocks,
/// followed for `accesses` steps — the classic latency-bound pattern
/// with zero spatial locality and a reuse distance equal to the
/// universe size.
pub fn pointer_chase(base: Addr, blocks: u64, accesses: usize, seed: u64) -> Vec<Access> {
    assert!(blocks > 0);
    // Fisher-Yates over the block indices to build one big cycle.
    let mut perm: Vec<u64> = (0..blocks).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..perm.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let mut out = Vec::with_capacity(accesses);
    let mut pos = 0usize;
    for _ in 0..accesses {
        out.push(read4(base.0 + perm[pos] * BLOCK_BYTES as u64));
        pos = (pos + 1) % perm.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = a.unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn sequential_wraps() {
        let s = sequential(Addr(0), 4, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].addr, Addr(0));
        assert_eq!(s[4].addr, Addr(0));
        assert_eq!(s[5].addr, Addr(64));
    }

    #[test]
    fn strided_covers_coprime_universe() {
        let s = strided(Addr(0), 8, 3, 8);
        let blocks: HashSet<u64> = s.iter().map(|a| a.addr.block().0).collect();
        assert_eq!(blocks.len(), 8, "stride 3 over 8 blocks visits all");
    }

    #[test]
    fn uniform_stays_in_universe() {
        let s = uniform_random(Addr(0), 16, 500, 3);
        assert!(s.iter().all(|a| a.addr.block().0 < 16));
        let blocks: HashSet<u64> = s.iter().map(|a| a.addr.block().0).collect();
        assert!(blocks.len() > 8, "500 draws should hit most of 16 blocks");
    }

    #[test]
    fn zipfian_is_skewed() {
        let s = zipfian(Addr(0), 64, 4000, 1.0, 9);
        let hot = s.iter().filter(|a| a.addr.block().0 == 0).count();
        let cold = s.iter().filter(|a| a.addr.block().0 == 63).count();
        assert!(hot > 10 * cold.max(1), "hot block {hot} vs cold {cold}");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let s = zipfian(Addr(0), 8, 8000, 0.0, 5);
        let mut counts = [0usize; 8];
        for a in &s {
            counts[a.addr.block().0 as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "non-uniform at theta=0: {counts:?}");
        }
    }

    #[test]
    fn pointer_chase_visits_everything_once_per_cycle() {
        let s = pointer_chase(Addr(0), 32, 32, 11);
        let blocks: HashSet<u64> = s.iter().map(|a| a.addr.block().0).collect();
        assert_eq!(blocks.len(), 32);
        // Second cycle repeats the first exactly.
        let s2 = pointer_chase(Addr(0), 32, 64, 11);
        assert_eq!(&s2[..32], &s2[32..]);
    }
}
