//! The load/store interface workload kernels execute against.

use crate::{Access, AccessKind, Addr, AnnotationTable};

/// A byte-addressable memory that kernels load from and store to.
///
/// Three implementations matter in this workspace:
///
/// * [`crate::MemoryImage`] — the precise functional store (golden runs).
/// * [`RecordingMemory`] — wraps an image, additionally emitting an
///   [`Access`] record per operation (trace capture).
/// * `dg-system`'s functional cache system — routes accesses through a
///   simulated hierarchy so approximate loads can return *doppelgänger*
///   values, feeding approximation error back into the computation.
///
/// Accesses must not cross a 64-byte block boundary; all the typed
/// helpers below are naturally aligned so this holds automatically for
/// aligned data.
pub trait Memory {
    /// Load `buf.len()` bytes starting at `addr`.
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]);

    /// Store `bytes` starting at `addr`.
    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]);

    /// Account for `ops` non-memory operations executed since the last
    /// access (used by timing models; the default implementation ignores
    /// it).
    fn think(&mut self, ops: u32) {
        let _ = ops;
    }

    /// Load an `u8`.
    fn load_u8(&mut self, addr: Addr) -> u8 {
        let mut b = [0u8; 1];
        self.load_bytes(addr, &mut b);
        b[0]
    }

    /// Store an `u8`.
    fn store_u8(&mut self, addr: Addr, v: u8) {
        self.store_bytes(addr, &[v]);
    }

    /// Load an `i32` (little endian).
    fn load_i32(&mut self, addr: Addr) -> i32 {
        let mut b = [0u8; 4];
        self.load_bytes(addr, &mut b);
        i32::from_le_bytes(b)
    }

    /// Store an `i32` (little endian).
    fn store_i32(&mut self, addr: Addr, v: i32) {
        self.store_bytes(addr, &v.to_le_bytes());
    }

    /// Load an `f32`.
    fn load_f32(&mut self, addr: Addr) -> f32 {
        let mut b = [0u8; 4];
        self.load_bytes(addr, &mut b);
        f32::from_le_bytes(b)
    }

    /// Store an `f32`.
    fn store_f32(&mut self, addr: Addr, v: f32) {
        self.store_bytes(addr, &v.to_le_bytes());
    }

    /// Load an `f64`.
    fn load_f64(&mut self, addr: Addr) -> f64 {
        let mut b = [0u8; 8];
        self.load_bytes(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Store an `f64`.
    fn store_f64(&mut self, addr: Addr, v: f64) {
        self.store_bytes(addr, &v.to_le_bytes());
    }
}

impl<M: Memory + ?Sized> Memory for &mut M {
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        (**self).load_bytes(addr, buf)
    }
    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        (**self).store_bytes(addr, bytes)
    }
    fn think(&mut self, ops: u32) {
        (**self).think(ops)
    }
}

/// A [`Memory`] adapter that forwards to an inner memory while recording
/// every access (with its approximate/precise classification) for later
/// trace-driven replay.
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, AnnotationTable, ApproxRegion, ElemType, Memory,
///              MemoryImage, RecordingMemory};
/// let mut image = MemoryImage::new();
/// let mut annots = AnnotationTable::new();
/// annots.add(ApproxRegion::new(Addr(0), 64, ElemType::F32, 0.0, 1.0));
/// let mut rec = RecordingMemory::new(&mut image, &annots);
/// rec.store_f32(Addr(0), 0.5);
/// rec.think(3);
/// let _ = rec.load_f32(Addr(128));
/// let accesses = rec.into_accesses();
/// assert_eq!(accesses.len(), 2);
/// assert!(accesses[0].approx);        // annotated store
/// assert!(!accesses[1].approx);       // unannotated load
/// assert_eq!(accesses[1].think, 3);
/// ```
#[derive(Debug)]
pub struct RecordingMemory<'a, M> {
    inner: M,
    annots: &'a AnnotationTable,
    accesses: Vec<Access>,
    pending_think: u32,
}

impl<'a, M: Memory> RecordingMemory<'a, M> {
    /// Wrap `inner`, classifying accesses against `annots`.
    pub fn new(inner: M, annots: &'a AnnotationTable) -> Self {
        RecordingMemory { inner, annots, accesses: Vec::new(), pending_think: 0 }
    }

    /// The recorded access stream, consuming the recorder.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }

    /// Number of accesses recorded so far.
    pub fn recorded(&self) -> usize {
        self.accesses.len()
    }

    fn record(&mut self, addr: Addr, kind: AccessKind, size: usize, data: Option<[u8; 8]>) {
        self.accesses.push(Access {
            addr,
            kind,
            size: size as u8,
            approx: self.annots.is_approx(addr),
            think: self.pending_think,
            data,
        });
        self.pending_think = 0;
    }
}

impl<M: Memory> Memory for RecordingMemory<'_, M> {
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.record(addr, AccessKind::Load, buf.len(), None);
        self.inner.load_bytes(addr, buf);
    }

    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let mut payload = [0u8; 8];
        payload[..bytes.len()].copy_from_slice(bytes);
        self.record(addr, AccessKind::Store, bytes.len(), Some(payload));
        self.inner.store_bytes(addr, bytes);
    }

    fn think(&mut self, ops: u32) {
        self.pending_think = self.pending_think.saturating_add(ops);
        self.inner.think(ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproxRegion, ElemType, MemoryImage};

    #[test]
    fn recording_forwards_values() {
        let mut image = MemoryImage::new();
        let annots = AnnotationTable::new();
        let mut rec = RecordingMemory::new(&mut image, &annots);
        rec.store_f64(Addr(0), 4.0);
        assert_eq!(rec.load_f64(Addr(0)), 4.0);
        assert_eq!(rec.recorded(), 2);
    }

    #[test]
    fn think_accumulates_until_next_access() {
        let mut image = MemoryImage::new();
        let annots = AnnotationTable::new();
        let mut rec = RecordingMemory::new(&mut image, &annots);
        rec.think(2);
        rec.think(3);
        rec.store_u8(Addr(0), 1);
        rec.store_u8(Addr(1), 1);
        let acc = rec.into_accesses();
        assert_eq!(acc[0].think, 5);
        assert_eq!(acc[1].think, 0);
    }

    #[test]
    fn classification_follows_annotations() {
        let mut image = MemoryImage::new();
        let mut annots = AnnotationTable::new();
        annots.add(ApproxRegion::new(Addr(64), 64, ElemType::F32, 0.0, 1.0));
        let mut rec = RecordingMemory::new(&mut image, &annots);
        let _ = rec.load_f32(Addr(0));
        let _ = rec.load_f32(Addr(64));
        let acc = rec.into_accesses();
        assert!(!acc[0].approx);
        assert!(acc[1].approx);
    }

    #[test]
    fn mut_ref_is_memory() {
        fn takes_memory<M: Memory>(m: &mut M) {
            m.store_u8(Addr(0), 9);
        }
        let mut image = MemoryImage::new();
        takes_memory(&mut image);
        assert_eq!(image.load_u8(Addr(0)), 9);
    }
}
