//! Numerical element types subject to approximation.

use std::fmt;

/// The element data types the paper's annotations cover (§2, §4.1).
///
/// Approximate data is numerical: integers and floating point. The
/// programmer declares the type of each annotated element so the cache
/// can interpret block bytes when hashing values into maps.
///
/// # Example
///
/// ```
/// use dg_mem::ElemType;
/// assert_eq!(ElemType::F32.bytes(), 4);
/// assert_eq!(ElemType::F32.elems_per_block(), 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemType {
    /// Unsigned 8-bit integer (e.g. single-channel pixels).
    U8,
    /// Signed 32-bit integer.
    I32,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl ElemType {
    /// All element types, in declaration order.
    pub const ALL: [ElemType; 4] = [ElemType::U8, ElemType::I32, ElemType::F32, ElemType::F64];

    /// Size of one element in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            ElemType::U8 => 1,
            ElemType::I32 => 4,
            ElemType::F32 => 4,
            ElemType::F64 => 8,
        }
    }

    /// Number of elements in a 64-byte cache block.
    #[inline]
    pub fn elems_per_block(self) -> usize {
        crate::BLOCK_BYTES / self.bytes()
    }

    /// Number of value bits in the element representation.
    ///
    /// Used by the map-generation rule of §3.7: if the map space `M`
    /// exceeds this width, the quantization step is skipped.
    #[inline]
    pub fn bits(self) -> u32 {
        (self.bytes() * 8) as u32
    }

    /// A stable one-byte code for serialization.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            ElemType::U8 => 0,
            ElemType::I32 => 1,
            ElemType::F32 => 2,
            ElemType::F64 => 3,
        }
    }

    /// Inverse of [`ElemType::code`].
    pub fn from_code(code: u8) -> Option<ElemType> {
        Some(match code {
            0 => ElemType::U8,
            1 => ElemType::I32,
            2 => ElemType::F32,
            3 => ElemType::F64,
            _ => return None,
        })
    }

    /// Decode the element starting at `bytes[0]` as an `f64` value.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`ElemType::bytes`].
    #[inline]
    pub fn decode(self, bytes: &[u8]) -> f64 {
        match self {
            ElemType::U8 => bytes[0] as f64,
            ElemType::I32 => i32::from_le_bytes(bytes[..4].try_into().unwrap()) as f64,
            ElemType::F32 => f32::from_le_bytes(bytes[..4].try_into().unwrap()) as f64,
            ElemType::F64 => f64::from_le_bytes(bytes[..8].try_into().unwrap()),
        }
    }

    /// Encode `value` into `bytes[0..self.bytes()]`.
    ///
    /// Values outside the representable range of the target type
    /// saturate (e.g. `300.0` encodes as `255u8`).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`ElemType::bytes`].
    #[inline]
    pub fn encode(self, value: f64, bytes: &mut [u8]) {
        match self {
            ElemType::U8 => bytes[0] = value.clamp(0.0, 255.0) as u8,
            ElemType::I32 => bytes[..4]
                .copy_from_slice(&(value.clamp(i32::MIN as f64, i32::MAX as f64) as i32).to_le_bytes()),
            ElemType::F32 => bytes[..4].copy_from_slice(&(value as f32).to_le_bytes()),
            ElemType::F64 => bytes[..8].copy_from_slice(&value.to_le_bytes()),
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ElemType::U8 => "u8",
            ElemType::I32 => "i32",
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(ElemType::U8.bytes(), 1);
        assert_eq!(ElemType::I32.bytes(), 4);
        assert_eq!(ElemType::F32.bytes(), 4);
        assert_eq!(ElemType::F64.bytes(), 8);
    }

    #[test]
    fn elems_per_block_matches_paper() {
        // "at most 16 floating-point elements per 64-byte block" (§4).
        assert_eq!(ElemType::F32.elems_per_block(), 16);
        assert_eq!(ElemType::F64.elems_per_block(), 8);
        assert_eq!(ElemType::U8.elems_per_block(), 64);
    }

    #[test]
    fn decode_encode_round_trip_f32() {
        let mut b = [0u8; 4];
        ElemType::F32.encode(3.25, &mut b);
        assert_eq!(ElemType::F32.decode(&b), 3.25);
    }

    #[test]
    fn decode_encode_round_trip_f64() {
        let mut b = [0u8; 8];
        ElemType::F64.encode(-1.0e100, &mut b);
        assert_eq!(ElemType::F64.decode(&b), -1.0e100);
    }

    #[test]
    fn decode_encode_round_trip_i32() {
        let mut b = [0u8; 4];
        ElemType::I32.encode(-12345.0, &mut b);
        assert_eq!(ElemType::I32.decode(&b), -12345.0);
    }

    #[test]
    fn u8_saturates() {
        let mut b = [0u8; 1];
        ElemType::U8.encode(300.0, &mut b);
        assert_eq!(b[0], 255);
        ElemType::U8.encode(-5.0, &mut b);
        assert_eq!(b[0], 0);
    }

    #[test]
    fn i32_saturates() {
        let mut b = [0u8; 4];
        ElemType::I32.encode(1e20, &mut b);
        assert_eq!(ElemType::I32.decode(&b), i32::MAX as f64);
    }

    #[test]
    fn bits() {
        assert_eq!(ElemType::U8.bits(), 8);
        assert_eq!(ElemType::F64.bits(), 64);
    }

    #[test]
    fn display() {
        assert_eq!(ElemType::F32.to_string(), "f32");
    }

    #[test]
    fn code_round_trips() {
        for ty in ElemType::ALL {
            assert_eq!(ElemType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(ElemType::from_code(99), None);
    }
}
