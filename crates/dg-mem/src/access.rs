//! Memory-access records.

use crate::Addr;
use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

impl AccessKind {
    /// Whether this is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// One recorded memory access.
///
/// The `approx` flag models the paper's ISA support for identifying
/// approximate loads/stores to hardware (§4.1): it is derived from the
/// annotation table at record time and steers the access to the
/// Doppelgänger or the precise LLC partition.
///
/// `think` counts the non-memory operations the issuing core executed
/// since its previous access; the timing model charges one cycle each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address of the access.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Access size in bytes (1–8).
    pub size: u8,
    /// Whether the address is annotated approximate.
    pub approx: bool,
    /// Non-memory operations preceding this access on the same core.
    pub think: u32,
    /// Store payload (first `size` bytes meaningful); `None` for loads.
    ///
    /// Carrying store values in the trace lets trace-driven replay keep
    /// the memory image value-accurate, so Doppelgänger map computations
    /// at insertion/writeback time see the data the kernel actually
    /// produced.
    pub data: Option<[u8; 8]>,
}

impl Access {
    /// Convenience constructor for a precise access with no think time.
    pub fn new(addr: Addr, kind: AccessKind, size: u8) -> Self {
        Access { addr, kind, size, approx: false, think: 0, data: None }
    }

    /// Same access flagged approximate.
    pub fn approximate(mut self) -> Self {
        self.approx = true;
        self
    }

    /// Same access carrying a store payload.
    ///
    /// # Panics
    ///
    /// Panics if this access is a load.
    pub fn with_data(mut self, data: [u8; 8]) -> Self {
        assert!(self.kind.is_store(), "only stores carry data payloads");
        self.data = Some(data);
        self
    }

    /// The store payload bytes (length `size`), if any.
    pub fn payload(&self) -> Option<&[u8]> {
        self.data.as_ref().map(|d| &d[..self.size as usize])
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}B{})",
            self.kind,
            self.addr,
            self.size,
            if self.approx { ", approx" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
    }

    #[test]
    fn builder_flags() {
        let a = Access::new(Addr(4), AccessKind::Load, 4).approximate();
        assert!(a.approx);
        assert_eq!(a.think, 0);
        assert_eq!(a.size, 4);
        assert!(a.payload().is_none());
    }

    #[test]
    fn store_payload_truncates_to_size() {
        let a = Access::new(Addr(0), AccessKind::Store, 4).with_data([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.payload().unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "only stores")]
    fn load_rejects_payload() {
        let _ = Access::new(Addr(0), AccessKind::Load, 4).with_data([0; 8]);
    }

    #[test]
    fn display_mentions_kind_and_approx() {
        let a = Access::new(Addr(4), AccessKind::Store, 8).approximate();
        let s = a.to_string();
        assert!(s.contains("store"));
        assert!(s.contains("approx"));
    }
}
