//! 64-byte cache-block data with typed element views.

use crate::{ElemType, BLOCK_BYTES};
use std::fmt;

/// The raw contents of one 64-byte cache block.
///
/// Blocks are plain byte containers; interpretation as typed elements is
/// supplied per access via [`ElemType`], mirroring the paper's assumption
/// that the data type is carried with each memory instruction (§3.7).
///
/// # Example
///
/// ```
/// use dg_mem::{BlockData, ElemType};
/// let mut b = BlockData::zeroed();
/// b.write_elem(ElemType::F32, 0, 1.0);
/// b.write_elem(ElemType::F32, 1, 3.0);
/// let stats = b.stats(ElemType::F32);
/// assert_eq!(stats.max, 3.0);
/// assert_eq!(stats.range(), 3.0);
/// ```
#[derive(Clone, Copy, Hash)]
pub struct BlockData {
    bytes: [u8; BLOCK_BYTES],
}

// Byte equality through the SIMD lane: block compares sit on the fill,
// writeback and map-memo paths. Exact equality is lane-independent, and
// the derived `Hash` remains consistent (equal blocks hash equally).
impl PartialEq for BlockData {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        dg_simd::eq64(&self.bytes, &other.bytes)
    }
}

impl Eq for BlockData {}

impl BlockData {
    /// A block of all-zero bytes.
    #[inline]
    pub fn zeroed() -> Self {
        BlockData { bytes: [0; BLOCK_BYTES] }
    }

    /// A block with the given raw contents.
    #[inline]
    pub fn from_bytes(bytes: [u8; BLOCK_BYTES]) -> Self {
        BlockData { bytes }
    }

    /// Build a block from typed element values.
    ///
    /// Missing trailing elements are zero.
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more elements than fit in a block.
    pub fn from_values(ty: ElemType, values: &[f64]) -> Self {
        assert!(values.len() <= ty.elems_per_block(), "too many elements for a block");
        let mut b = BlockData::zeroed();
        for (i, &v) in values.iter().enumerate() {
            b.write_elem(ty, i, v);
        }
        b
    }

    /// Borrow the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; BLOCK_BYTES] {
        &self.bytes
    }

    /// Mutably borrow the raw bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; BLOCK_BYTES] {
        &mut self.bytes
    }

    /// Overwrite this block with `src`'s bytes through the SIMD copy
    /// lane — the fill/writeback block-move primitive.
    #[inline]
    pub fn copy_from(&mut self, src: &BlockData) {
        dg_simd::copy64(&mut self.bytes, &src.bytes);
    }

    /// The [`dg_simd::ElemKind`] decoding layout of `ty`.
    #[inline]
    fn simd_kind(ty: ElemType) -> dg_simd::ElemKind {
        match ty {
            ElemType::U8 => dg_simd::ElemKind::U8,
            ElemType::I32 => dg_simd::ElemKind::I32,
            ElemType::F32 => dg_simd::ElemKind::F32,
            ElemType::F64 => dg_simd::ElemKind::F64,
        }
    }

    /// Read element `idx` interpreted as `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the element type.
    #[inline]
    pub fn elem(&self, ty: ElemType, idx: usize) -> f64 {
        let off = idx * ty.bytes();
        ty.decode(&self.bytes[off..off + ty.bytes()])
    }

    /// Write element `idx` interpreted as `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the element type.
    #[inline]
    pub fn write_elem(&mut self, ty: ElemType, idx: usize, value: f64) {
        let off = idx * ty.bytes();
        ty.encode(value, &mut self.bytes[off..off + ty.bytes()]);
    }

    /// Iterate over all elements of the block interpreted as `ty`.
    pub fn elems(&self, ty: ElemType) -> impl Iterator<Item = f64> + '_ {
        (0..ty.elems_per_block()).map(move |i| self.elem(ty, i))
    }

    /// Value statistics (min / max / sum) over the block's elements.
    ///
    /// These are exactly the quantities Doppelgänger's two hash functions
    /// consume: the *average* and the *range* of element values (§3.7).
    pub fn stats(&self, ty: ElemType) -> BlockStats {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let n = ty.elems_per_block();
        for v in self.elems(ty) {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        BlockStats { min, max, sum, count: n }
    }

    /// Value statistics over the block's elements clamped into
    /// `[lo, hi]` — the map-generation pass (runs on every LLC insert
    /// and write of an approximate block; paper §3.7 with the §4.1
    /// clamping rule).
    ///
    /// Equivalent to clamping each element of [`Self::elems`] and
    /// folding min/max/sum in element order. Dispatches to the
    /// process-wide SIMD lane (`dg_simd::lane()`, `DG_SIMD` override);
    /// every lane is bit-identical to the scalar reference — see
    /// [`Self::clamped_stats_on`] for the contract.
    pub fn clamped_stats(&self, ty: ElemType, lo: f64, hi: f64) -> BlockStats {
        self.clamped_stats_on(dg_simd::lane(), ty, lo, hi)
    }

    /// [`Self::clamped_stats`] on an explicit [`dg_simd::Lane`], for
    /// differential tests that compare lanes in-process.
    ///
    /// The scalar lane is the reference: clamp, then min, max, sum per
    /// element in element order. The vector lanes decode + clamp into
    /// an element buffer (bitwise identical per element), reduce
    /// min/max with the same NaN-skipping fold, and sum the buffer
    /// **sequentially** — f64 addition is non-associative, so the sum
    /// is never vectorized. The only representational slack is the
    /// sign of a zero winning a `min`/`max` tie between `+0.0` and
    /// `-0.0`, which no consumer can observe (`-0.0 == 0.0`, and the
    /// downstream quantizer's arithmetic is sign-of-zero-blind).
    pub fn clamped_stats_on(&self, lane: dg_simd::Lane, ty: ElemType, lo: f64, hi: f64) -> BlockStats {
        if lane != dg_simd::Lane::Scalar {
            let mut buf = [0f64; BLOCK_BYTES];
            let n = dg_simd::decode_clamp_on(lane, Self::simd_kind(ty), &self.bytes, lo, hi, &mut buf);
            let (min, max) = dg_simd::min_max_on(lane, &buf[..n]);
            let sum = dg_simd::sum_seq(&buf[..n]);
            return BlockStats { min, max, sum, count: n };
        }
        #[inline(always)]
        fn fold(vals: impl Iterator<Item = f64>, lo: f64, hi: f64) -> (f64, f64, f64) {
            let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
            for v in vals {
                let v = v.clamp(lo, hi);
                min = min.min(v);
                max = max.max(v);
                sum += v;
            }
            (min, max, sum)
        }
        let b = &self.bytes[..];
        let (min, max, sum) = match ty {
            ElemType::U8 => fold(b.iter().map(|&x| x as f64), lo, hi),
            ElemType::I32 => fold(
                b.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap()) as f64),
                lo,
                hi,
            ),
            ElemType::F32 => fold(
                b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64),
                lo,
                hi,
            ),
            ElemType::F64 => {
                fold(b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())), lo, hi)
            }
        };
        BlockStats { min, max, sum, count: ty.elems_per_block() }
    }

    /// Decode and clamp every element into `out` (element order) on an
    /// explicit lane, returning the element count. All lanes produce
    /// bitwise-identical buffers; this feeds order-sensitive map folds
    /// (e.g. the stride hash) that then run scalar over the buffer.
    #[inline]
    pub fn clamped_elems_on(
        &self,
        lane: dg_simd::Lane,
        ty: ElemType,
        lo: f64,
        hi: f64,
        out: &mut [f64; BLOCK_BYTES],
    ) -> usize {
        dg_simd::decode_clamp_on(lane, Self::simd_kind(ty), &self.bytes, lo, hi, out)
    }

    /// Element-wise approximate similarity test of §2.
    ///
    /// Two blocks are approximately similar under threshold `t` if every
    /// corresponding pair of elements differs by no more than
    /// `t × (max − min)` of the annotated value range. `t` is a fraction
    /// (`0.01` = 1%).
    pub fn approx_similar(&self, other: &BlockData, ty: ElemType, t: f64, range: f64) -> bool {
        let tol = t * range;
        self.elems(ty)
            .zip(other.elems(ty))
            .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl Default for BlockData {
    fn default() -> Self {
        BlockData::zeroed()
    }
}

impl fmt::Debug for BlockData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockData({:02x?}…)", &self.bytes[..8])
    }
}

/// Min / max / sum / count statistics over a block's typed elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockStats {
    /// Smallest element value.
    pub min: f64,
    /// Largest element value.
    pub max: f64,
    /// Sum of element values.
    pub sum: f64,
    /// Number of elements.
    pub count: usize,
}

impl BlockStats {
    /// Mean of the element values — Doppelgänger's first hash function.
    #[inline]
    pub fn average(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Largest minus smallest value — Doppelgänger's second hash function.
    #[inline]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_stats() {
        let b = BlockData::zeroed();
        let s = b.stats(ElemType::F32);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.average(), 0.0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.count, 16);
    }

    #[test]
    fn from_values_and_elem_round_trip() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let b = BlockData::from_values(ElemType::F64, &vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.elem(ElemType::F64, i), v);
        }
        // Trailing elements are zero.
        assert_eq!(b.elem(ElemType::F64, 7), 0.0);
    }

    #[test]
    #[should_panic(expected = "too many elements")]
    fn from_values_rejects_overflow() {
        BlockData::from_values(ElemType::F64, &[0.0; 9]);
    }

    #[test]
    fn stats_average_and_range() {
        let b = BlockData::from_values(ElemType::F64, &[2.0, 4.0, 6.0, 8.0, 0.0, 0.0, 0.0, 0.0]);
        let s = b.stats(ElemType::F64);
        assert_eq!(s.average(), 20.0 / 8.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.range(), 8.0);
    }

    #[test]
    fn paper_fig1_example_blocks() {
        // RGB pixel values from Fig. 1b, two pixels per block.
        let b1 = BlockData::from_values(
            ElemType::U8,
            &[92.0, 131.0, 183.0, 91.0, 132.0, 186.0],
        );
        let b2 = BlockData::from_values(
            ElemType::U8,
            &[90.0, 131.0, 185.0, 93.0, 133.0, 184.0],
        );
        let b3 = BlockData::from_values(ElemType::U8, &[35.0, 31.0, 29.0, 43.0, 38.0, 37.0]);
        // With T = 1% of the 0-255 range (tolerance 2.55), blocks 1 and 2
        // are approximately similar; block 3 is not similar to either.
        // (Only the first 6 elements are populated; the rest are 0 in all
        // blocks and trivially match.)
        assert!(b1.approx_similar(&b2, ElemType::U8, 0.01, 255.0));
        assert!(!b1.approx_similar(&b3, ElemType::U8, 0.01, 255.0));
        // With T = 0%, blocks 1 and 2 are NOT similar (values differ).
        assert!(!b1.approx_similar(&b2, ElemType::U8, 0.0, 255.0));
    }

    #[test]
    fn approx_similar_is_reflexive_and_symmetric() {
        let b1 = BlockData::from_values(ElemType::F32, &[1.0, 2.0, 3.0]);
        let b2 = BlockData::from_values(ElemType::F32, &[1.1, 2.1, 3.1]);
        assert!(b1.approx_similar(&b1, ElemType::F32, 0.0, 10.0));
        assert_eq!(
            b1.approx_similar(&b2, ElemType::F32, 0.02, 10.0),
            b2.approx_similar(&b1, ElemType::F32, 0.02, 10.0)
        );
    }

    #[test]
    fn write_elem_updates_bytes() {
        let mut b = BlockData::zeroed();
        b.write_elem(ElemType::U8, 63, 7.0);
        assert_eq!(b.as_bytes()[63], 7);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", BlockData::zeroed()).is_empty());
    }

    #[test]
    fn copy_from_and_eq_are_byte_exact() {
        let mut src = BlockData::zeroed();
        for (i, b) in src.as_bytes_mut().iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut dst = BlockData::zeroed();
        assert_ne!(dst, src);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_bytes(), src.as_bytes());
        dst.as_bytes_mut()[63] ^= 1;
        assert_ne!(dst, src);
    }

    #[test]
    fn clamped_stats_lanes_match_scalar() {
        // All element types, NaN/∞/denormal payloads included, across
        // every available lane: min/max/sum must agree with the scalar
        // reference (bitwise except the unobservable sign of zero).
        let mut state = 0x9E37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for round in 0..100 {
            let mut raw = [0u8; 64];
            for c in raw.chunks_exact_mut(8) {
                c.copy_from_slice(&next().to_le_bytes());
            }
            if round % 5 == 0 {
                // Plant f64 specials at aligned offsets.
                raw[0..8].copy_from_slice(&f64::NAN.to_le_bytes());
                raw[8..16].copy_from_slice(&f64::INFINITY.to_le_bytes());
                raw[16..24].copy_from_slice(&(f64::MIN_POSITIVE / 8.0).to_le_bytes());
            }
            let b = BlockData::from_bytes(raw);
            for ty in [ElemType::U8, ElemType::I32, ElemType::F32, ElemType::F64] {
                for (lo, hi) in [(0.0, 255.0), (-1e9, 1e9), (-0.5, 0.5)] {
                    let want = b.clamped_stats_on(dg_simd::Lane::Scalar, ty, lo, hi);
                    for lane in [dg_simd::Lane::Sse2, dg_simd::Lane::Avx2] {
                        if !lane.available() {
                            continue;
                        }
                        let got = b.clamped_stats_on(lane, ty, lo, hi);
                        assert_eq!(got.count, want.count);
                        assert_eq!(got.sum.to_bits(), want.sum.to_bits(), "{lane:?} {ty:?} sum");
                        assert!(
                            got.min == want.min || got.min.to_bits() == want.min.to_bits(),
                            "{lane:?} {ty:?} min {} vs {}",
                            got.min,
                            want.min
                        );
                        assert!(
                            got.max == want.max || got.max.to_bits() == want.max.to_bits(),
                            "{lane:?} {ty:?} max {} vs {}",
                            got.max,
                            want.max
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn clamped_elems_match_scalar_decode_bitwise() {
        let mut raw = [0u8; 64];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(101).wrapping_add(3);
        }
        let b = BlockData::from_bytes(raw);
        for ty in [ElemType::U8, ElemType::I32, ElemType::F32, ElemType::F64] {
            let mut want = [0f64; 64];
            let n = b.clamped_elems_on(dg_simd::Lane::Scalar, ty, -1e6, 1e6, &mut want);
            assert_eq!(n, ty.elems_per_block());
            // Scalar path must equal elems()+clamp exactly.
            for (i, v) in b.elems(ty).enumerate() {
                assert_eq!(want[i].to_bits(), v.clamp(-1e6, 1e6).to_bits());
            }
            for lane in [dg_simd::Lane::Sse2, dg_simd::Lane::Avx2] {
                if !lane.available() {
                    continue;
                }
                let mut got = [0f64; 64];
                assert_eq!(b.clamped_elems_on(lane, ty, -1e6, 1e6, &mut got), n);
                for i in 0..n {
                    assert_eq!(got[i].to_bits(), want[i].to_bits(), "{lane:?} {ty:?} elem {i}");
                }
            }
        }
    }
}
