//! Binary (de)serialization of traces.
//!
//! A compact hand-rolled format (magic `DGTRACE1`, little endian), so
//! captured traces can be stored and replayed against many
//! configurations without re-running the workload.

use crate::{
    Access, AccessKind, Addr, AnnotationTable, ApproxRegion, BlockData, ElemType, MemoryImage,
    Trace, BLOCK_BYTES,
};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DGTRACE1";

/// Cap on speculative `Vec` pre-allocation during deserialization.
///
/// Length fields come verbatim from the (untrusted) file, so a corrupt
/// header must not be able to request a multi-GiB allocation — or a
/// capacity-overflow abort — before the per-element reads hit EOF and
/// surface a clean `InvalidData`/`UnexpectedEof` error. Legitimate
/// streams longer than the cap still load fine; the vector just grows
/// incrementally past it.
const MAX_PREALLOC: usize = 4096;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_exact(r)?))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_exact(r)?))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    Ok(f64::from_le_bytes(read_exact(r)?))
}

impl Trace {
    /// Serialize the trace (initial image + annotations + per-core
    /// access streams) into `w`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        // Annotations.
        write_u32(w, self.annotations.len() as u32)?;
        for r in self.annotations.iter() {
            write_u64(w, r.start.0)?;
            write_u64(w, r.len)?;
            w.write_all(&[r.ty.code()])?;
            write_f64(w, r.min)?;
            write_f64(w, r.max)?;
        }
        // Initial image.
        write_u64(w, self.initial.populated_blocks() as u64)?;
        for (addr, data) in self.initial.iter_blocks() {
            write_u64(w, addr.0)?;
            w.write_all(data.as_bytes())?;
        }
        // Per-core streams.
        write_u32(w, self.cores.len() as u32)?;
        for core in &self.cores {
            write_u64(w, core.len() as u64)?;
            for a in core {
                write_u64(w, a.addr.0)?;
                let flags = u8::from(a.kind.is_store())
                    | (u8::from(a.approx) << 1)
                    | (u8::from(a.data.is_some()) << 2);
                w.write_all(&[flags, a.size])?;
                write_u32(w, a.think)?;
                if let Some(d) = a.data {
                    w.write_all(&d)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialize a trace previously written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/contents, or any reader
    /// error.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Trace> {
        let magic: [u8; 8] = read_exact(r)?;
        if &magic != MAGIC {
            return Err(bad("not a DGTRACE1 file"));
        }
        let mut annotations = AnnotationTable::new();
        let n_regions = read_u32(r)?;
        for _ in 0..n_regions {
            let start = read_u64(r)?;
            let len = read_u64(r)?;
            let [code] = read_exact(r)?;
            let ty = ElemType::from_code(code).ok_or_else(|| bad("bad element type"))?;
            let min = read_f64(r)?;
            let max = read_f64(r)?;
            // `ApproxRegion::new` and `AnnotationTable::add` assert
            // their invariants; a corrupt file must fail with an
            // `io::Error`, not a panic, so validate here first.
            if len == 0 {
                return Err(bad("empty annotation region"));
            }
            if !(min <= max) {
                return Err(bad("annotation range must satisfy min <= max"));
            }
            let end = start
                .checked_add(len)
                .ok_or_else(|| bad("annotation region wraps the address space"))?;
            if annotations.iter().any(|r| start < r.start.0 + r.len && r.start.0 < end) {
                return Err(bad("overlapping annotation regions"));
            }
            annotations.add(ApproxRegion::new(Addr(start), len, ty, min, max));
        }
        let mut initial = MemoryImage::new();
        let n_blocks = read_u64(r)?;
        for _ in 0..n_blocks {
            let addr = read_u64(r)?;
            let bytes: [u8; BLOCK_BYTES] = read_exact(r)?;
            initial.set_block(crate::BlockAddr(addr), BlockData::from_bytes(bytes));
        }
        let n_cores = read_u32(r)? as usize;
        let mut cores = Vec::with_capacity(n_cores.min(MAX_PREALLOC));
        for _ in 0..n_cores {
            let n = read_u64(r)? as usize;
            let mut stream = Vec::with_capacity(n.min(MAX_PREALLOC));
            for _ in 0..n {
                let addr = read_u64(r)?;
                let [flags, size] = read_exact(r)?;
                let think = read_u32(r)?;
                let kind = if flags & 1 != 0 { AccessKind::Store } else { AccessKind::Load };
                let data = if flags & 4 != 0 { Some(read_exact::<R, 8>(r)?) } else { None };
                if !(1..=8).contains(&size) {
                    return Err(bad("access size out of range"));
                }
                stream.push(Access {
                    addr: Addr(addr),
                    kind,
                    size,
                    approx: flags & 2 != 0,
                    think,
                    data,
                });
            }
            cores.push(stream);
        }
        Ok(Trace::new(initial, annotations, cores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Memory;

    fn sample_trace() -> Trace {
        let mut image = MemoryImage::new();
        image.store_f32(Addr(64), 1.5);
        image.store_i32(Addr(4096), -7);
        let mut annotations = AnnotationTable::new();
        annotations.add(ApproxRegion::new(Addr(0), 1024, ElemType::F32, -1.0, 1.0));
        let mut a0 = Access::new(Addr(64), AccessKind::Load, 4).approximate();
        a0.think = 17;
        let a1 = Access::new(Addr(4096), AccessKind::Store, 4).with_data([9, 8, 7, 6, 0, 0, 0, 0]);
        Trace::new(image, annotations, vec![vec![a0, a1], vec![]])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.cores, t.cores);
        assert_eq!(back.annotations.len(), 1);
        assert_eq!(back.initial.populated_blocks(), 2);
        let mut img = back.initial.clone();
        assert_eq!(img.load_f32(Addr(64)), 1.5);
        assert_eq!(img.load_i32(Addr(4096)), -7);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::read_from(&mut &b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    /// Header for a trace with no annotations and no initial image,
    /// ready for an adversarial core-stream section.
    fn empty_header() -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u32.to_le_bytes()); // n_regions
        buf.extend_from_slice(&0u64.to_le_bytes()); // n_blocks
        buf
    }

    #[test]
    fn rejects_absurd_core_count() {
        // A file that claims u32::MAX cores and then ends. Pre-fix this
        // tried `Vec::with_capacity(u32::MAX)` of `Vec<Access>` (~100 GiB)
        // and aborted before any EOF error could surface.
        let mut buf = empty_header();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_absurd_access_count() {
        // One core claiming u64::MAX accesses: pre-fix this panicked in
        // `Vec::with_capacity` with a capacity overflow.
        let mut buf = empty_header();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        // No prefix of a valid file may parse, panic, or abort.
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(Trace::read_from(&mut &buf[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
    }

    fn region_bytes(start: u64, len: u64, min: f64, max: f64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&start.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.push(ElemType::F32.code());
        buf.extend_from_slice(&min.to_le_bytes());
        buf.extend_from_slice(&max.to_le_bytes());
        buf
    }

    #[test]
    fn rejects_invalid_regions_without_panicking() {
        // Each corrupt region header must come back as a clean Err; the
        // pre-fix code forwarded them into asserting constructors.
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (region_bytes(0, 0, -1.0, 1.0), "empty region"),
            (region_bytes(0, 1024, 1.0, -1.0), "inverted range"),
            (region_bytes(0, 1024, f64::NAN, 1.0), "NaN bound"),
            (region_bytes(u64::MAX - 4, 1024, -1.0, 1.0), "wrapping region"),
        ];
        for (region, what) in cases {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&region);
            let err = Trace::read_from(&mut buf.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{what}");
        }
    }

    #[test]
    fn rejects_overlapping_regions() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&region_bytes(0, 1024, -1.0, 1.0));
        buf.extend_from_slice(&region_bytes(512, 1024, -1.0, 1.0));
        let err = Trace::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new(MemoryImage::new(), AnnotationTable::new(), vec![]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert!(back.cores.is_empty());
        assert_eq!(back.initial.populated_blocks(), 0);
    }
}
