//! Sparse functional main-memory image.

use crate::{Addr, BlockAddr, BlockData, Memory, BLOCK_BYTES};
use dg_par::FxHashMap;

/// A sparse, functional image of main memory at block granularity.
///
/// Unallocated blocks read as zero. The image serves three roles:
///
/// 1. The precise backing store behind every simulated cache hierarchy.
/// 2. The "golden" memory for precise reference runs of workloads.
/// 3. The initial-state snapshot embedded in a [`crate::Trace`].
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, Memory, MemoryImage};
/// let mut m = MemoryImage::new();
/// m.store_f64(Addr(8), 2.5);
/// assert_eq!(m.load_f64(Addr(8)), 2.5);
/// assert_eq!(m.load_f64(Addr(4096)), 0.0); // untouched memory reads zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoryImage {
    // FxHash rather than SipHash: every simulated load/store below the
    // cache hierarchy hashes a block address here, and the keys are
    // trusted (see dg_par::fxmap).
    blocks: FxHashMap<u64, BlockData>,
}

impl MemoryImage {
    /// An empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the full 64-byte block at `addr` (zero if never written).
    #[inline]
    pub fn block(&self, addr: BlockAddr) -> BlockData {
        self.blocks.get(&addr.0).copied().unwrap_or_default()
    }

    /// Overwrite the full 64-byte block at `addr`.
    #[inline]
    pub fn set_block(&mut self, addr: BlockAddr, data: BlockData) {
        self.blocks.insert(addr.0, data);
    }

    /// Number of blocks that have been written at least once.
    pub fn populated_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over all populated blocks in unspecified order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, &BlockData)> {
        self.blocks.iter().map(|(&a, d)| (BlockAddr(a), d))
    }
}

impl Memory for MemoryImage {
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        let off = addr.block_offset();
        assert!(
            off + buf.len() <= BLOCK_BYTES,
            "access must not cross a block boundary"
        );
        let block = self.block(addr.block());
        buf.copy_from_slice(&block.as_bytes()[off..off + buf.len()]);
    }

    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let off = addr.block_offset();
        assert!(
            off + bytes.len() <= BLOCK_BYTES,
            "access must not cross a block boundary"
        );
        let entry = self.blocks.entry(addr.block().0).or_default();
        entry.as_bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElemType;

    #[test]
    fn zero_initialised() {
        let mut m = MemoryImage::new();
        assert_eq!(m.load_f32(Addr(123 * 4)), 0.0);
        assert_eq!(m.populated_blocks(), 0);
    }

    #[test]
    fn store_load_round_trip_all_types() {
        let mut m = MemoryImage::new();
        m.store_u8(Addr(0), 17);
        m.store_i32(Addr(4), -42);
        m.store_f32(Addr(8), 1.5);
        m.store_f64(Addr(16), -2.25);
        assert_eq!(m.load_u8(Addr(0)), 17);
        assert_eq!(m.load_i32(Addr(4)), -42);
        assert_eq!(m.load_f32(Addr(8)), 1.5);
        assert_eq!(m.load_f64(Addr(16)), -2.25);
    }

    #[test]
    fn block_view_sees_stores() {
        let mut m = MemoryImage::new();
        m.store_f32(Addr(64), 9.0);
        let b = m.block(BlockAddr(1));
        assert_eq!(b.elem(ElemType::F32, 0), 9.0);
    }

    #[test]
    fn set_block_overwrites() {
        let mut m = MemoryImage::new();
        let b = BlockData::from_values(ElemType::F32, &[5.0; 16]);
        m.set_block(BlockAddr(3), b);
        assert_eq!(m.load_f32(Addr(3 * 64)), 5.0);
        assert_eq!(m.populated_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "block boundary")]
    fn cross_block_store_rejected() {
        let mut m = MemoryImage::new();
        m.store_f64(Addr(60), 1.0);
    }

    #[test]
    fn iter_blocks_yields_populated() {
        let mut m = MemoryImage::new();
        m.store_u8(Addr(0), 1);
        m.store_u8(Addr(200), 2);
        let mut addrs: Vec<u64> = m.iter_blocks().map(|(a, _)| a.0).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 3]);
    }
}
