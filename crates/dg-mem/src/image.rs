//! Sparse functional main-memory image backed by a paged arena.

use crate::{Addr, BlockAddr, BlockData, Memory, BLOCK_BYTES};
use dg_par::FxHashMap;
use std::fmt;

/// Blocks per arena page (one `u64` occupancy bitmap per page).
///
/// A page spans `PAGE_BLOCKS * 64 B = 4 KiB` of address space, so the
/// arena's page granularity coincides with a conventional OS page:
/// workload arrays touch long dense runs of blocks, which land in the
/// same page and are served without any hashing at all.
const PAGE_BLOCKS: usize = 64;

/// log2(PAGE_BLOCKS), for the block-address → page-id shift.
const PAGE_SHIFT: u32 = PAGE_BLOCKS.trailing_zeros();

/// Sentinel page id for an empty MRU cache (unreachable: page ids are
/// block addresses shifted right, so the top bits are always zero).
const NO_PAGE: u64 = u64::MAX;

/// One dense page of the arena: 64 blocks plus an occupancy bitmap
/// recording which of them have been written at least once.
#[derive(Clone)]
struct Page {
    blocks: Box<[BlockData; PAGE_BLOCKS]>,
    /// Bit `b` set ⇔ `blocks[b]` has been stored to. Blocks are zeroed
    /// until their first store, so reads may skip this bitmap entirely;
    /// it only feeds `populated_blocks` / `iter_blocks`.
    present: u64,
}

impl Page {
    fn new() -> Self {
        Page { blocks: Box::new([BlockData::zeroed(); PAGE_BLOCKS]), present: 0 }
    }
}

/// A sparse, functional image of main memory at block granularity.
///
/// Unallocated blocks read as zero. The image serves three roles:
///
/// 1. The precise backing store behind every simulated cache hierarchy.
/// 2. The "golden" memory for precise reference runs of workloads.
/// 3. The initial-state snapshot embedded in a [`crate::Trace`].
///
/// Internally the image is a two-level paged arena rather than a flat
/// hash map: a small page directory maps page ids to dense 4 KiB pages,
/// and a one-entry MRU page cache serves consecutive accesses to the
/// same page without touching the directory. Every simulated load and
/// store below the cache hierarchy bottoms out here, so the common
/// sequential case must not hash. Accesses through `&mut self` entry
/// points ([`Memory::load_bytes`], [`Memory::store_bytes`],
/// [`Self::fetch_block`], [`Self::set_block`]) refresh the MRU cache;
/// the shared accessor [`Self::block`] consults it read-only.
///
/// [`Self::iter_blocks`] yields blocks in ascending address order — a
/// deterministic order independent of the store sequence.
///
/// # Example
///
/// ```
/// use dg_mem::{Addr, Memory, MemoryImage};
/// let mut m = MemoryImage::new();
/// m.store_f64(Addr(8), 2.5);
/// assert_eq!(m.load_f64(Addr(8)), 2.5);
/// assert_eq!(m.load_f64(Addr(4096)), 0.0); // untouched memory reads zero
/// ```
#[derive(Clone)]
pub struct MemoryImage {
    // FxHash rather than SipHash: the directory is only consulted on an
    // MRU-cache miss, but the keys are trusted either way (see
    // dg_par::fxmap).
    dir: FxHashMap<u64, u32>,
    pages: Vec<Page>,
    /// One-entry MRU page cache: `(page id, index into pages)`.
    mru: (u64, u32),
    /// Number of blocks stored to at least once (Σ popcount(present)).
    populated: usize,
}

impl Default for MemoryImage {
    fn default() -> Self {
        MemoryImage { dir: FxHashMap::default(), pages: Vec::new(), mru: (NO_PAGE, 0), populated: 0 }
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("pages", &self.pages.len())
            .field("populated_blocks", &self.populated)
            .finish()
    }
}

impl MemoryImage {
    /// An empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn page_id(addr: BlockAddr) -> (u64, usize) {
        (addr.0 >> PAGE_SHIFT, (addr.0 & (PAGE_BLOCKS as u64 - 1)) as usize)
    }

    /// Look up a page without updating the MRU cache (shared access).
    #[inline]
    fn find_page(&self, pid: u64) -> Option<usize> {
        if self.mru.0 == pid {
            return Some(self.mru.1 as usize);
        }
        self.dir.get(&pid).map(|&i| i as usize)
    }

    /// Look up a page, refreshing the MRU cache on success.
    #[inline]
    fn find_page_mut(&mut self, pid: u64) -> Option<usize> {
        if self.mru.0 == pid {
            return Some(self.mru.1 as usize);
        }
        let idx = *self.dir.get(&pid)?;
        self.mru = (pid, idx);
        Some(idx as usize)
    }

    /// Look up a page, allocating (zeroed) if absent; refreshes the MRU.
    #[inline]
    fn find_or_alloc_page(&mut self, pid: u64) -> usize {
        if self.mru.0 == pid {
            return self.mru.1 as usize;
        }
        let next = self.pages.len() as u32;
        let idx = *self.dir.entry(pid).or_insert(next);
        if idx == next {
            self.pages.push(Page::new());
        }
        self.mru = (pid, idx);
        idx as usize
    }

    /// Read the full 64-byte block at `addr` (zero if never written).
    ///
    /// Shared access: probes the MRU page cache read-only. Callers on
    /// the per-access hot path hold `&mut self` and should prefer
    /// [`Self::fetch_block`], which also refreshes the cache.
    #[inline]
    pub fn block(&self, addr: BlockAddr) -> BlockData {
        let (pid, slot) = Self::page_id(addr);
        match self.find_page(pid) {
            Some(idx) => self.pages[idx].blocks[slot],
            None => BlockData::zeroed(),
        }
    }

    /// Read the full 64-byte block at `addr` (zero if never written),
    /// refreshing the MRU page cache — the hot-path variant of
    /// [`Self::block`] used for cache-miss fills.
    #[inline]
    pub fn fetch_block(&mut self, addr: BlockAddr) -> BlockData {
        let (pid, slot) = Self::page_id(addr);
        match self.find_page_mut(pid) {
            Some(idx) => self.pages[idx].blocks[slot],
            None => BlockData::zeroed(),
        }
    }

    /// Overwrite the full 64-byte block at `addr` — the writeback-path
    /// block move, routed through the SIMD copy lane.
    #[inline]
    pub fn set_block(&mut self, addr: BlockAddr, data: BlockData) {
        let (pid, slot) = Self::page_id(addr);
        let idx = self.find_or_alloc_page(pid);
        let page = &mut self.pages[idx];
        page.blocks[slot].copy_from(&data);
        let bit = 1u64 << slot;
        if page.present & bit == 0 {
            page.present |= bit;
            self.populated += 1;
        }
    }

    /// Number of blocks that have been written at least once.
    pub fn populated_blocks(&self) -> usize {
        self.populated
    }

    /// Iterate over all populated blocks in ascending address order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, &BlockData)> {
        let mut pages: Vec<(u64, u32)> = self.dir.iter().map(|(&p, &i)| (p, i)).collect();
        pages.sort_unstable_by_key(|&(pid, _)| pid);
        pages.into_iter().flat_map(move |(pid, idx)| {
            let page = &self.pages[idx as usize];
            (0..PAGE_BLOCKS).filter_map(move |b| {
                (page.present >> b & 1 == 1)
                    .then(|| (BlockAddr((pid << PAGE_SHIFT) + b as u64), &page.blocks[b]))
            })
        })
    }
}

impl Memory for MemoryImage {
    fn load_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        let off = addr.block_offset();
        assert!(
            off + buf.len() <= BLOCK_BYTES,
            "access must not cross a block boundary"
        );
        let (pid, slot) = Self::page_id(addr.block());
        match self.find_page_mut(pid) {
            Some(idx) => {
                let bytes = self.pages[idx].blocks[slot].as_bytes();
                buf.copy_from_slice(&bytes[off..off + buf.len()]);
            }
            None => buf.fill(0),
        }
    }

    fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let off = addr.block_offset();
        assert!(
            off + bytes.len() <= BLOCK_BYTES,
            "access must not cross a block boundary"
        );
        let (pid, slot) = Self::page_id(addr.block());
        let idx = self.find_or_alloc_page(pid);
        let page = &mut self.pages[idx];
        page.blocks[slot].as_bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
        let bit = 1u64 << slot;
        if page.present & bit == 0 {
            page.present |= bit;
            self.populated += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ElemType;

    #[test]
    fn zero_initialised() {
        let mut m = MemoryImage::new();
        assert_eq!(m.load_f32(Addr(123 * 4)), 0.0);
        assert_eq!(m.populated_blocks(), 0);
    }

    #[test]
    fn store_load_round_trip_all_types() {
        let mut m = MemoryImage::new();
        m.store_u8(Addr(0), 17);
        m.store_i32(Addr(4), -42);
        m.store_f32(Addr(8), 1.5);
        m.store_f64(Addr(16), -2.25);
        assert_eq!(m.load_u8(Addr(0)), 17);
        assert_eq!(m.load_i32(Addr(4)), -42);
        assert_eq!(m.load_f32(Addr(8)), 1.5);
        assert_eq!(m.load_f64(Addr(16)), -2.25);
    }

    #[test]
    fn block_view_sees_stores() {
        let mut m = MemoryImage::new();
        m.store_f32(Addr(64), 9.0);
        let b = m.block(BlockAddr(1));
        assert_eq!(b.elem(ElemType::F32, 0), 9.0);
        assert_eq!(m.fetch_block(BlockAddr(1)), b);
    }

    #[test]
    fn set_block_overwrites() {
        let mut m = MemoryImage::new();
        let b = BlockData::from_values(ElemType::F32, &[5.0; 16]);
        m.set_block(BlockAddr(3), b);
        assert_eq!(m.load_f32(Addr(3 * 64)), 5.0);
        assert_eq!(m.populated_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "block boundary")]
    fn cross_block_store_rejected() {
        let mut m = MemoryImage::new();
        m.store_f64(Addr(60), 1.0);
    }

    #[test]
    fn iter_blocks_yields_populated() {
        let mut m = MemoryImage::new();
        m.store_u8(Addr(0), 1);
        m.store_u8(Addr(200), 2);
        let addrs: Vec<u64> = m.iter_blocks().map(|(a, _)| a.0).collect();
        assert_eq!(addrs, vec![0, 3]);
    }

    #[test]
    fn iter_blocks_is_address_ordered_regardless_of_store_order() {
        let mut m = MemoryImage::new();
        // Store far-apart pages in reverse order.
        for &b in &[9999u64, 5, 70, 4096, 0, 130] {
            m.store_u8(Addr(b * 64), 1);
        }
        let addrs: Vec<u64> = m.iter_blocks().map(|(a, _)| a.0).collect();
        assert_eq!(addrs, vec![0, 5, 70, 130, 4096, 9999]);
        assert_eq!(m.populated_blocks(), 6);
    }

    #[test]
    fn cross_page_accesses_fall_back_to_directory() {
        let mut m = MemoryImage::new();
        // Two blocks in different pages (page = 64 blocks): ping-pong
        // between them so every access misses the MRU page cache.
        m.store_i32(Addr(0), 1);
        m.store_i32(Addr(64 * 64), 2);
        for _ in 0..4 {
            assert_eq!(m.load_i32(Addr(0)), 1);
            assert_eq!(m.load_i32(Addr(64 * 64)), 2);
        }
    }

    #[test]
    fn zero_store_marks_block_populated() {
        // Parity with the historical hashmap behaviour: storing zeroes
        // still allocates ("writes") the block.
        let mut m = MemoryImage::new();
        m.store_i32(Addr(128), 0);
        assert_eq!(m.populated_blocks(), 1);
        assert_eq!(m.iter_blocks().count(), 1);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = MemoryImage::new();
        a.store_i32(Addr(0), 7);
        let mut b = a.clone();
        b.store_i32(Addr(0), 9);
        assert_eq!(a.load_i32(Addr(0)), 7);
        assert_eq!(b.load_i32(Addr(0)), 9);
    }
}
