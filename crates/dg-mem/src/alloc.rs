//! A simple bump allocator for laying out workload data structures.

use crate::{Addr, BLOCK_BYTES};

/// A bump allocator over a simulated physical address space.
///
/// Workloads use it to place their arrays at deterministic,
/// block-aligned addresses, so runs are reproducible and annotations can
/// be attached to exact ranges.
///
/// # Example
///
/// ```
/// use dg_mem::AddressSpace;
/// let mut space = AddressSpace::new();
/// let a = space.alloc_blocks(100);     // 100 bytes, block aligned
/// let b = space.alloc_blocks(8);
/// assert_eq!(a.0 % 64, 0);
/// assert!(b.0 >= a.0 + 128);           // 100 B rounds up to 2 blocks
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Default base address for allocations (skips the null page).
    pub const BASE: u64 = 0x1_0000;

    /// A fresh address space starting at [`AddressSpace::BASE`].
    pub fn new() -> Self {
        AddressSpace { next: Self::BASE }
    }

    /// A fresh address space starting at `base`.
    pub fn with_base(base: Addr) -> Self {
        AddressSpace { next: base.0 }
    }

    /// Allocate `bytes` bytes aligned to `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        Addr(base)
    }

    /// Allocate `bytes` bytes aligned to (and padded to) whole cache
    /// blocks, so distinct allocations never share a block.
    pub fn alloc_blocks(&mut self, bytes: u64) -> Addr {
        let addr = self.alloc(bytes, BLOCK_BYTES as u64);
        // Pad to the end of the last block so the next allocation cannot
        // share it.
        let rem = self.next % BLOCK_BYTES as u64;
        if rem != 0 {
            self.next += BLOCK_BYTES as u64 - rem;
        }
        addr
    }

    /// The next address that would be allocated (watermark).
    pub fn watermark(&self) -> Addr {
        Addr(self.next)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100, 8);
        let b = s.alloc(100, 8);
        assert!(b.0 >= a.0 + 100);
    }

    #[test]
    fn alignment_respected() {
        let mut s = AddressSpace::new();
        s.alloc(3, 1);
        let a = s.alloc(8, 64);
        assert_eq!(a.0 % 64, 0);
    }

    #[test]
    fn block_alloc_pads_to_block() {
        let mut s = AddressSpace::new();
        let a = s.alloc_blocks(1);
        let b = s.alloc_blocks(1);
        assert_eq!(b.0 - a.0, 64);
        assert_ne!(a.block(), b.block());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_alignment() {
        AddressSpace::new().alloc(8, 3);
    }

    #[test]
    fn with_base_starts_there() {
        let mut s = AddressSpace::with_base(Addr(0x100));
        assert_eq!(s.alloc(8, 1), Addr(0x100));
    }
}
