//! Chunked, bounded-memory access streams.
//!
//! Full-trace `Vec<Access>` materialization caps the reachable scale: a
//! paper-scale multi-tenant trace is billions of accesses, far beyond
//! what fits in memory. A [`TraceStream`] instead *delivers* the access
//! sequence in bounded chunks (at most [`STREAM_CHUNK`] records alive at
//! a time) in a canonical global order, and supports visiting any
//! `[start, end)` index window — the primitive sampled simulation needs
//! to profile a run cheaply and then seek to its selected intervals.
//!
//! Implementations in the workspace:
//!
//! * [`SynthStream`] — a generated multi-tenant stream whose chunks are
//!   produced from a per-chunk reseeded [`SplitMix64`], so seeking to
//!   any interval is O(chunk) instead of O(prefix): chunk `c`'s content
//!   is a pure function of `(spec, seed, c)` and never depends on the
//!   draws of earlier chunks.
//! * [`materialize`]'s inverse, [`stream_trace`] — an adapter over an
//!   already-materialized [`Trace`] (round-robin interleaved order),
//!   for tests and for replaying captured traces through stream-based
//!   consumers.
//! * `dg-workloads`' `KernelSource` — streams a workload kernel's
//!   execution-driven access sequence in the canonical phase-major
//!   order of the system runner.

use crate::synth::SplitMix64;
use crate::{Access, AccessKind, Addr, Trace, BLOCK_BYTES};

/// Maximum records delivered per sink call — the bound on live trace
/// memory for any stream consumer.
pub const STREAM_CHUNK: usize = 4096;

/// A chunk of consecutive stream records: the global index of the first
/// record and `(core, access)` pairs.
pub type StreamChunk<'a> = &'a [(usize, Access)];

/// A replayable access sequence delivered in bounded chunks.
///
/// The stream has a fixed canonical order (the order a simulator would
/// consume it in); `visit` delivers the records whose global indices
/// fall in `[start, end)`, in order, in chunks of at most
/// [`STREAM_CHUNK`]. Visiting is repeatable: two visits of the same
/// window deliver identical records.
pub trait TraceStream {
    /// Number of cores issuing accesses.
    fn cores(&self) -> usize;

    /// Deliver every record with global index in `[start, end)` to
    /// `sink`, in canonical order. Each sink call receives the global
    /// index of the chunk's first record plus the records.
    fn visit(&mut self, start: u64, end: u64, sink: &mut dyn FnMut(u64, StreamChunk<'_>));

    /// Total number of accesses in the stream (counted by a full
    /// visit; implementations with cheaper knowledge override this).
    fn total_accesses(&mut self) -> u64 {
        let mut n = 0u64;
        self.visit(0, u64::MAX, &mut |_, chunk| n += chunk.len() as u64);
        n
    }
}

/// Reference pattern of one synthetic tenant (one core).
#[derive(Clone, Copy, Debug)]
pub enum SynthPattern {
    /// Sequential block walk with the given block stride.
    Sequential {
        /// Blocks advanced per access.
        stride: u64,
    },
    /// Uniform random block references.
    Uniform,
    /// Zipf-distributed block references (block 0 hottest).
    Zipf {
        /// Skew parameter; larger is more skewed. Must be finite and
        /// non-negative.
        theta: f64,
    },
}

/// One synthetic tenant: a reference pattern over a private block range.
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Base address of the tenant's block range.
    pub base: Addr,
    /// Number of blocks in the range (must be > 0).
    pub blocks: u64,
    /// Reference pattern.
    pub pattern: SynthPattern,
    /// Fraction of accesses that are stores, in 1/16ths (0..=16).
    pub store_sixteenths: u8,
    /// Whether the tenant's accesses are flagged approximate.
    pub approx: bool,
}

/// A generated multi-tenant access stream with O(chunk) seek.
///
/// Accesses interleave round-robin across tenants (access `i` belongs
/// to tenant `i % tenants`). Randomness is drawn from a [`SplitMix64`]
/// reseeded at every [`STREAM_CHUNK`] boundary from `(seed, chunk)`,
/// so `visit(start, …)` only regenerates from the enclosing chunk
/// boundary — never from the beginning of the stream.
#[derive(Clone, Debug)]
pub struct SynthStream {
    tenants: Vec<TenantSpec>,
    /// Zipf CDF per tenant (empty for non-Zipf patterns).
    cdfs: Vec<Vec<f64>>,
    total: u64,
    seed: u64,
}

impl SynthStream {
    /// A stream of `total` accesses over the given tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, a tenant has zero blocks, a store
    /// fraction exceeds 16/16, or a Zipf theta is not a finite
    /// non-negative number.
    pub fn new(tenants: Vec<TenantSpec>, total: u64, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        let cdfs = tenants
            .iter()
            .map(|t| {
                assert!(t.blocks > 0, "tenant needs a non-empty block range");
                assert!(t.store_sixteenths <= 16, "store fraction is out of 16");
                match t.pattern {
                    SynthPattern::Zipf { theta } => {
                        assert!(
                            theta.is_finite() && theta >= 0.0,
                            "zipf theta must be finite and non-negative"
                        );
                        zipf_cdf(t.blocks, theta)
                    }
                    _ => Vec::new(),
                }
            })
            .collect();
        SynthStream { tenants, cdfs, total, seed }
    }

    /// Generate the record at global index `i` using `rng` (already
    /// positioned by the caller's in-chunk replay).
    fn generate(&self, i: u64, rng: &mut SplitMix64) -> (usize, Access) {
        let t = (i % self.tenants.len() as u64) as usize;
        let spec = &self.tenants[t];
        let draw = rng.next_u64();
        let block = match spec.pattern {
            SynthPattern::Sequential { stride } => {
                ((i / self.tenants.len() as u64) * stride) % spec.blocks
            }
            SynthPattern::Uniform => draw % spec.blocks,
            SynthPattern::Zipf { .. } => {
                let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
                let cdf = &self.cdfs[t];
                cdf.partition_point(|&p| p < u) as u64
            }
        };
        let lane = rng.next_u64();
        let addr = Addr(spec.base.0 + block * BLOCK_BYTES as u64 + (lane % 8) * 8);
        let is_store = (lane >> 32) % 16 < spec.store_sixteenths as u64;
        let mut a = if is_store {
            let payload = rng.next_u64().to_le_bytes();
            Access::new(addr, AccessKind::Store, 8).with_data(payload)
        } else {
            Access::new(addr, AccessKind::Load, 8)
        };
        a.approx = spec.approx;
        (t, a)
    }

    fn chunk_rng(&self, chunk: u64) -> SplitMix64 {
        // One warm-up draw decorrelates nearby chunk seeds.
        let mut rng = SplitMix64::new(
            self.seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        );
        rng.next_u64();
        rng
    }
}

impl TraceStream for SynthStream {
    fn cores(&self) -> usize {
        self.tenants.len()
    }

    fn total_accesses(&mut self) -> u64 {
        self.total
    }

    fn visit(&mut self, start: u64, end: u64, sink: &mut dyn FnMut(u64, StreamChunk<'_>)) {
        let end = end.min(self.total);
        if start >= end {
            return;
        }
        let chunk_len = STREAM_CHUNK as u64;
        let mut buf: Vec<(usize, Access)> = Vec::with_capacity(STREAM_CHUNK);
        let mut chunk = start / chunk_len;
        while chunk * chunk_len < end {
            let cbase = chunk * chunk_len;
            let cend = (cbase + chunk_len).min(self.total);
            let mut rng = self.chunk_rng(chunk);
            buf.clear();
            let first = cbase.max(start);
            for i in cbase..cend.min(end) {
                let rec = self.generate(i, &mut rng);
                // Records before the window still consume their draws so
                // in-window content is position-stable, but only the
                // window lands in the buffer.
                if i >= first {
                    buf.push(rec);
                }
            }
            if !buf.is_empty() {
                sink(first, &buf);
            }
            chunk += 1;
        }
    }
}

/// Zipf CDF over `n` blocks with skew `theta` (block 0 hottest).
fn zipf_cdf(n: u64, theta: f64) -> Vec<f64> {
    let n = usize::try_from(n).expect("zipf universe fits in usize");
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(theta);
        cdf.push(acc);
    }
    let norm = acc;
    for p in &mut cdf {
        *p /= norm;
    }
    cdf
}

/// Visit a materialized [`Trace`] as a stream: canonical order is the
/// trace's round-robin interleaving (the replay order), chunked at
/// [`STREAM_CHUNK`].
pub fn stream_trace(trace: &Trace, start: u64, end: u64, sink: &mut dyn FnMut(u64, StreamChunk<'_>)) {
    let mut buf: Vec<(usize, Access)> = Vec::with_capacity(STREAM_CHUNK);
    let mut base = 0u64;
    let mut idx = 0u64;
    for (core, access) in trace.interleaved() {
        if idx >= end {
            break;
        }
        if idx >= start {
            if buf.is_empty() {
                base = idx;
            }
            buf.push((core, *access));
            if buf.len() == STREAM_CHUNK {
                sink(base, &buf);
                buf.clear();
            }
        }
        idx += 1;
    }
    if !buf.is_empty() {
        sink(base, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants(total: u64) -> SynthStream {
        SynthStream::new(
            vec![
                TenantSpec {
                    base: Addr(0),
                    blocks: 256,
                    pattern: SynthPattern::Zipf { theta: 0.9 },
                    store_sixteenths: 4,
                    approx: true,
                },
                TenantSpec {
                    base: Addr(1 << 20),
                    blocks: 512,
                    pattern: SynthPattern::Uniform,
                    store_sixteenths: 0,
                    approx: false,
                },
            ],
            total,
            7,
        )
    }

    fn collect(stream: &mut SynthStream, start: u64, end: u64) -> Vec<(u64, usize, Access)> {
        let mut out = Vec::new();
        stream.visit(start, end, &mut |base, chunk| {
            for (off, (core, a)) in chunk.iter().enumerate() {
                out.push((base + off as u64, *core, *a));
            }
        });
        out
    }

    #[test]
    fn windows_agree_with_the_full_stream() {
        // Seek-to-interval must produce exactly the records a full
        // scan produces at those indices — the contract sampled
        // simulation depends on.
        let mut s = two_tenants(20_000);
        let full = collect(&mut s, 0, u64::MAX);
        assert_eq!(full.len(), 20_000);
        assert_eq!(s.total_accesses(), 20_000);
        for (start, end) in [(0, 100), (4_000, 4_200), (4_095, 4_097), (13_000, 20_000)] {
            let window = collect(&mut s, start, end);
            assert_eq!(window.len(), (end - start) as usize);
            for (i, rec) in window.iter().enumerate() {
                assert_eq!(rec, &full[start as usize + i], "window ({start}, {end}) index {i}");
            }
        }
        // Past-the-end and empty windows are harmless.
        assert!(collect(&mut s, 20_000, 30_000).is_empty());
        assert!(collect(&mut s, 10, 10).is_empty());
    }

    #[test]
    fn chunks_bound_live_memory() {
        let mut s = two_tenants(10_000);
        let mut max_chunk = 0usize;
        let mut n = 0u64;
        s.visit(0, u64::MAX, &mut |_, chunk| {
            max_chunk = max_chunk.max(chunk.len());
            n += chunk.len() as u64;
        });
        assert_eq!(n, 10_000);
        assert!(max_chunk <= STREAM_CHUNK);
    }

    #[test]
    fn tenants_interleave_and_classify() {
        let mut s = two_tenants(1_000);
        let recs = collect(&mut s, 0, u64::MAX);
        for (i, core, a) in &recs {
            assert_eq!(*core, (*i % 2) as usize);
            assert_eq!(a.approx, *core == 0, "tenant 0 is the approximate one");
            if *core == 1 {
                assert!(!a.kind.is_store(), "tenant 1 is read-only");
                assert!(a.addr.0 >= 1 << 20, "tenant ranges are disjoint");
            }
        }
        assert!(
            recs.iter().any(|(_, c, a)| *c == 0 && a.kind.is_store()),
            "tenant 0 stores sometimes"
        );
    }

    #[test]
    fn zipf_tenant_skews_toward_low_blocks() {
        let mut s = two_tenants(40_000);
        let mut hot = 0u64;
        let mut tenant0 = 0u64;
        s.visit(0, u64::MAX, &mut |_, chunk| {
            for (core, a) in chunk {
                if *core == 0 {
                    tenant0 += 1;
                    if a.addr.0 / (BLOCK_BYTES as u64) < 16 {
                        hot += 1;
                    }
                }
            }
        });
        // 16/256 blocks draw well over their uniform 6.25% share.
        assert!(hot as f64 / tenant0 as f64 > 0.2, "{hot}/{tenant0}");
    }

    #[test]
    fn trace_adapter_streams_in_interleaved_order() {
        use crate::{AnnotationTable, MemoryImage, TraceBuilder};
        let mut b = TraceBuilder::new(MemoryImage::new(), AnnotationTable::new(), 2);
        for i in 0..10u64 {
            b.push((i % 2) as usize, Access::new(Addr(i * 64), AccessKind::Load, 4));
        }
        let trace = b.build();
        let expected: Vec<(usize, Access)> =
            trace.interleaved().map(|(c, a)| (c, *a)).collect();
        let mut seen = Vec::new();
        stream_trace(&trace, 2, 7, &mut |base, chunk| {
            for (off, rec) in chunk.iter().enumerate() {
                seen.push((base + off as u64, *rec));
            }
        });
        assert_eq!(seen.len(), 5);
        for (idx, rec) in &seen {
            assert_eq!(rec, &expected[*idx as usize]);
        }
    }
}
