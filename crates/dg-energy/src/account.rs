//! Turning activity counts into energy.

use std::fmt;

/// Accumulates dynamic energy from per-event costs and converts leakage
/// power × time into energy.
///
/// # Example
///
/// ```
/// use dg_energy::EnergyAccount;
/// let mut acct = EnergyAccount::new();
/// acct.add(1000, 24.8);                       // 1000 tag reads at 24.8 pJ
/// acct.add(10, dg_energy::MAP_ENERGY_PJ);     // 10 map generations
/// assert_eq!(acct.dynamic_pj(), 1000.0 * 24.8 + 10.0 * 168.0);
///
/// // 1 M cycles at 1 GHz with 50 mW of leakage:
/// let leak = EnergyAccount::leakage_pj(50.0, 1_000_000, 1.0);
/// assert_eq!(leak, 50.0 * 1.0e6); // mW × ns = pJ
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyAccount {
    dynamic_pj: f64,
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` events costing `pj_per_event` each.
    pub fn add(&mut self, count: u64, pj_per_event: f64) {
        self.dynamic_pj += count as f64 * pj_per_event;
    }

    /// Add a raw energy amount in picojoules.
    pub fn add_pj(&mut self, pj: f64) {
        self.dynamic_pj += pj;
    }

    /// Accumulated dynamic energy, pJ.
    pub fn dynamic_pj(&self) -> f64 {
        self.dynamic_pj
    }

    /// Accumulated dynamic energy, µJ.
    pub fn dynamic_uj(&self) -> f64 {
        self.dynamic_pj * 1e-6
    }

    /// Leakage energy in pJ for `leakage_mw` milliwatts sustained over
    /// `cycles` cycles at `freq_ghz` GHz (mW × ns = pJ).
    pub fn leakage_pj(leakage_mw: f64, cycles: u64, freq_ghz: f64) -> f64 {
        let ns = cycles as f64 / freq_ghz;
        leakage_mw * ns
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} uJ dynamic", self.dynamic_uj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = EnergyAccount::new();
        a.add(10, 5.0);
        a.add_pj(1.5);
        assert_eq!(a.dynamic_pj(), 51.5);
        assert!((a.dynamic_uj() - 51.5e-6).abs() < 1e-18);
    }

    #[test]
    fn leakage_units() {
        // 1 mW over 1 ns is 1 pJ.
        assert_eq!(EnergyAccount::leakage_pj(1.0, 1, 1.0), 1.0);
        // Halving frequency doubles wall time and thus leakage energy.
        assert_eq!(EnergyAccount::leakage_pj(1.0, 100, 0.5), 200.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(EnergyAccount::new().to_string().contains("uJ"));
    }
}
