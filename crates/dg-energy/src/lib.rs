//! CACTI-lite: an analytical SRAM area / latency / energy model.
//!
//! The paper measures hardware cost with CACTI 5.1 at 32 nm (§4). CACTI
//! is unavailable here, so this crate provides **CACTI-lite**: power-law
//! scaling models for SRAM arrays whose constants were fitted against
//! the six structures the paper reports in Table 3 (baseline 2 MB LLC,
//! 1 MB precise cache, Doppelgänger tag/data arrays, uniDoppelgänger
//! tag/data arrays). At the anchor points the model reproduces the
//! paper's numbers within a few percent (asserted by tests); between and
//! beyond them it scales with the same qualitative laws CACTI uses
//! (area ≈ bits, dynamic energy ≈ capacity, latency ≈ capacity^~0.3,
//! leakage ≈ bits).
//!
//! The crate also carries the paper's map-generation overhead constants
//! (eight FP multiply-add units, 0.01 mm² and 8 pJ/op each; 21 ops per
//! map → 168 pJ per generation, §4/§5.6) and an [`EnergyAccount`]
//! accumulator that turns activity counts into joules.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod account;
mod model;
mod paper;

pub use account::EnergyAccount;
pub use model::{ArrayCost, CactiLite, StructureEstimate};
pub use paper::{PaperStructure, PAPER_TABLE3};

/// Energy of one floating-point multiply-add in the map-generation
/// units, picojoules (paper §4, citing Galal et al.).
pub const FPU_ENERGY_PJ: f64 = 8.0;

/// Area of one floating-point multiply-add unit, mm² (paper §4).
pub const FPU_AREA_MM2: f64 = 0.01;

/// Number of map-generation FPUs provisioned (paper §4).
pub const FPU_COUNT: u32 = 8;

/// Floating-point operations per map generation (paper §5.6:
/// average + range + mapping ≈ 21 multiply-adds per 16-element block).
pub const MAP_FLOPS: u32 = 21;

/// Energy per map generation, picojoules (21 ops × 8 pJ = 168 pJ, §5.6).
pub const MAP_ENERGY_PJ: f64 = MAP_FLOPS as f64 * FPU_ENERGY_PJ;

/// Total area of the map-generation units, mm².
pub const MAP_UNITS_AREA_MM2: f64 = FPU_COUNT as f64 * FPU_AREA_MM2;

/// Energy of one BΔI compression or decompression pass over a 64-byte
/// block, picojoules. BΔI hardware is narrow integer adders and
/// comparators — Pekhimenko et al. (PACT 2012) report single-cycle
/// decompression with negligible cost next to an LLC data access; one
/// FPU-op's worth is a conservative stand-in at this fidelity.
pub const BDI_CODEC_PJ: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_overhead_constants_match_paper() {
        assert_eq!(MAP_ENERGY_PJ, 168.0);
        assert!((MAP_UNITS_AREA_MM2 - 0.08).abs() < 1e-12);
    }
}
