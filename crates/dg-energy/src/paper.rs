//! The paper's Table 3 values, kept verbatim for calibration tests and
//! for side-by-side reporting in the Table 3 bench harness.

/// One row (structure) of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperStructure {
    /// Structure name as reported.
    pub name: &'static str,
    /// Metadata (tag/MTag) storage, KB.
    pub tag_kbytes: f64,
    /// Block-data storage, KB (`None` for pure tag arrays).
    pub data_kbytes: Option<f64>,
    /// Total size as reported, KB.
    pub total_kbytes: f64,
    /// Area as reported, mm².
    pub area_mm2: f64,
    /// Tag access latency, ns.
    pub tag_latency_ns: f64,
    /// Data access latency, ns (`None` for pure tag arrays).
    pub data_latency_ns: Option<f64>,
    /// Tag access energy, pJ.
    pub tag_energy_pj: f64,
    /// Data access energy, pJ (`None` for pure tag arrays).
    pub data_energy_pj: Option<f64>,
}

/// All six structures of Table 3.
///
/// Tag-portion sizes are derived from the reported per-entry bit counts
/// (e.g. the baseline's 32 K × 27-bit tags = 105.5 KB).
pub const PAPER_TABLE3: &[PaperStructure] = &[
    PaperStructure {
        name: "baseline 2MB LLC",
        tag_kbytes: 105.5,
        data_kbytes: Some(2048.0),
        total_kbytes: 2156.0,
        area_mm2: 4.12,
        tag_latency_ns: 0.61,
        data_latency_ns: Some(1.27),
        tag_energy_pj: 24.8,
        data_energy_pj: Some(667.4),
    },
    PaperStructure {
        name: "1MB precise cache",
        tag_kbytes: 54.7,
        data_kbytes: Some(1024.0),
        total_kbytes: 1080.0,
        area_mm2: 1.91,
        tag_latency_ns: 0.45,
        data_latency_ns: Some(1.07),
        tag_energy_pj: 13.5,
        data_energy_pj: Some(322.7),
    },
    PaperStructure {
        name: "Doppelganger tag array",
        tag_kbytes: 154.0,
        data_kbytes: None,
        total_kbytes: 154.0,
        area_mm2: 0.19,
        tag_latency_ns: 0.48,
        data_latency_ns: None,
        tag_energy_pj: 30.8,
        data_energy_pj: None,
    },
    PaperStructure {
        name: "Doppelganger data array",
        tag_kbytes: 19.0,
        data_kbytes: Some(256.0),
        total_kbytes: 275.0,
        area_mm2: 0.47,
        tag_latency_ns: 0.30,
        data_latency_ns: Some(0.67),
        tag_energy_pj: 6.3,
        data_energy_pj: Some(80.3),
    },
    PaperStructure {
        name: "uniDoppelganger tag array",
        tag_kbytes: 316.0,
        data_kbytes: None,
        total_kbytes: 316.0,
        area_mm2: 0.40,
        tag_latency_ns: 0.74,
        data_latency_ns: None,
        tag_energy_pj: 61.3,
        data_energy_pj: None,
    },
    PaperStructure {
        name: "uniDoppelganger data array",
        tag_kbytes: 76.0,
        data_kbytes: Some(1024.0),
        total_kbytes: 1100.0,
        area_mm2: 1.95,
        tag_latency_ns: 0.51,
        data_latency_ns: Some(1.07),
        tag_energy_pj: 18.7,
        data_energy_pj: Some(322.7),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_consistent() {
        for s in PAPER_TABLE3 {
            let sum = s.tag_kbytes + s.data_kbytes.unwrap_or(0.0);
            assert!(
                (sum - s.total_kbytes).abs() / s.total_kbytes < 0.01,
                "{}: {} + {:?} != {}",
                s.name,
                s.tag_kbytes,
                s.data_kbytes,
                s.total_kbytes
            );
        }
    }

    #[test]
    fn paper_area_reduction_is_1_55x() {
        // Fig. 13 / abstract: baseline 4.12 mm² vs precise + Dopp tag +
        // Dopp data = 1.91 + 0.19 + 0.47 = 2.57 mm² → 1.60× by pure
        // area table; the paper reports 1.55× (which includes the
        // map-generation FPUs: 2.57 + 0.08 = 2.65 → 1.554×).
        let baseline = PAPER_TABLE3[0].area_mm2;
        let ours: f64 = PAPER_TABLE3[1].area_mm2
            + PAPER_TABLE3[2].area_mm2
            + PAPER_TABLE3[3].area_mm2
            + crate::MAP_UNITS_AREA_MM2;
        let reduction = baseline / ours;
        assert!((reduction - 1.55).abs() < 0.01, "got {reduction:.3}");
    }
}
