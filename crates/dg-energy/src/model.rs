//! The CACTI-lite analytical array model.

use std::fmt;

/// Cost of accessing one SRAM array (a tag array, an MTag array, or a
/// data array).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrayCost {
    /// Silicon area, mm².
    pub area_mm2: f64,
    /// Access latency, ns.
    pub latency_ns: f64,
    /// Dynamic energy per access, pJ.
    pub read_energy_pj: f64,
}

/// Cost estimate for a full cache structure: its tag (metadata) portion,
/// its data portion (absent for pure tag arrays), and leakage power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureEstimate {
    /// The metadata array (address tags or MTags).
    pub tag: ArrayCost,
    /// The block-data array, if the structure stores data.
    pub data: Option<ArrayCost>,
    /// Leakage power, mW.
    pub leakage_mw: f64,
}

impl StructureEstimate {
    /// Total area (tag + data), mm².
    pub fn area_mm2(&self) -> f64 {
        self.tag.area_mm2 + self.data.map_or(0.0, |d| d.area_mm2)
    }

    /// Latency of a full sequential access (tag lookup then data read).
    pub fn access_latency_ns(&self) -> f64 {
        self.tag.latency_ns + self.data.map_or(0.0, |d| d.latency_ns)
    }

    /// Dynamic energy of a full access (tag + data), pJ.
    pub fn access_energy_pj(&self) -> f64 {
        self.tag.read_energy_pj + self.data.map_or(0.0, |d| d.read_energy_pj)
    }
}

impl fmt::Display for StructureEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.2} mm2, tag {:.2} ns / {:.1} pJ",
            self.area_mm2(),
            self.tag.latency_ns,
            self.tag.read_energy_pj
        )?;
        if let Some(d) = self.data {
            write!(f, ", data {:.2} ns / {:.1} pJ", d.latency_ns, d.read_energy_pj)?;
        }
        write!(f, ", leakage {:.1} mW", self.leakage_mw)
    }
}

/// The CACTI-lite model: power-law area/latency/energy scaling for
/// 32 nm SRAM arrays, calibrated against the paper's Table 3.
///
/// Calibration (least-squares in log space over the Table 3 anchors):
///
/// | quantity | law | anchors used |
/// |---|---|---|
/// | tag-array area | `1.03e-3 · KB^1.036` mm² | Dopp (154 KB → 0.19), uniDopp (316 KB → 0.40) tag arrays |
/// | data-array area | `1.46e-3 · KB^1.03` mm² | 256 KB → 0.449, 1 MB → 1.85, 2 MB → 3.99 (data portions) |
/// | tag energy | `0.427 · KB^0.863` pJ | 54.7 KB → 13.5 … 316 KB → 61.3 |
/// | data energy | `0.283 · KB^1.018` pJ | 256 KB → 80.3, 1 MB → 322.7, 2 MB → 667.4 |
/// | tag latency | `0.145 · KB^0.283` ns | same tag anchors |
/// | data latency | `0.121 · KB^0.308` ns | same data anchors |
/// | leakage | `0.080 · KB` mW | linear in stored bits (paper's leakage reduction tracks storage: 1.43× storage ↔ 1.41× leakage) |
///
/// # Example
///
/// ```
/// use dg_energy::CactiLite;
/// let m = CactiLite::new();
/// // The baseline 2 MB LLC: ~0.6 ns tag, ~1.27 ns data (Table 3).
/// let est = m.structure(105.5, Some(2048.0));
/// assert!((est.tag.latency_ns - 0.61).abs() < 0.1);
/// assert!((est.data.unwrap().latency_ns - 1.27).abs() < 0.13);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CactiLite {
    tag_area: (f64, f64),
    data_area: (f64, f64),
    tag_energy: (f64, f64),
    data_energy: (f64, f64),
    tag_latency: (f64, f64),
    data_latency: (f64, f64),
    leakage_mw_per_kb: f64,
}

impl CactiLite {
    /// The model with the Table 3-calibrated 32 nm constants.
    pub fn new() -> Self {
        CactiLite {
            tag_area: (1.03e-3, 1.036),
            data_area: (1.46e-3, 1.03),
            tag_energy: (0.427, 0.863),
            data_energy: (0.283, 1.018),
            tag_latency: (0.145, 0.283),
            data_latency: (0.121, 0.308),
            leakage_mw_per_kb: 0.080,
        }
    }

    fn pow((a, b): (f64, f64), kb: f64) -> f64 {
        a * kb.powf(b)
    }

    /// Cost of a metadata (tag/MTag) array of `kbytes` kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if `kbytes` is not positive.
    pub fn tag_array(&self, kbytes: f64) -> ArrayCost {
        assert!(kbytes > 0.0, "array size must be positive");
        ArrayCost {
            area_mm2: Self::pow(self.tag_area, kbytes),
            latency_ns: Self::pow(self.tag_latency, kbytes),
            read_energy_pj: Self::pow(self.tag_energy, kbytes),
        }
    }

    /// Cost of a block-data array of `kbytes` kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if `kbytes` is not positive.
    pub fn data_array(&self, kbytes: f64) -> ArrayCost {
        assert!(kbytes > 0.0, "array size must be positive");
        ArrayCost {
            area_mm2: Self::pow(self.data_area, kbytes),
            latency_ns: Self::pow(self.data_latency, kbytes),
            read_energy_pj: Self::pow(self.data_energy, kbytes),
        }
    }

    /// Full structure estimate from its tag-portion and (optional)
    /// data-portion sizes in kilobytes.
    pub fn structure(&self, tag_kbytes: f64, data_kbytes: Option<f64>) -> StructureEstimate {
        let total_kb = tag_kbytes + data_kbytes.unwrap_or(0.0);
        StructureEstimate {
            tag: self.tag_array(tag_kbytes),
            data: data_kbytes.map(|kb| self.data_array(kb)),
            leakage_mw: self.leakage_mw_per_kb * total_kb,
        }
    }
}

impl CactiLite {
    /// A copy of the model with every area, dynamic-energy and leakage
    /// constant multiplied by the given factors — a first-order
    /// technology-node scaling knob (e.g. 32 nm → 22 nm is roughly
    /// `scaled(0.5, 0.6, 0.8)`; exponents are left untouched).
    pub fn scaled(mut self, area: f64, energy: f64, leakage: f64) -> Self {
        assert!(area > 0.0 && energy > 0.0 && leakage > 0.0, "factors must be positive");
        self.tag_area.0 *= area;
        self.data_area.0 *= area;
        self.tag_energy.0 *= energy;
        self.data_energy.0 *= energy;
        self.leakage_mw_per_kb *= leakage;
        self
    }
}

impl Default for CactiLite {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PAPER_TABLE3;

    /// The model must reproduce every Table 3 anchor within tolerance.
    #[test]
    fn reproduces_table3_anchors() {
        let m = CactiLite::new();
        for s in PAPER_TABLE3 {
            let est = m.structure(s.tag_kbytes, s.data_kbytes);
            let rel = |got: f64, want: f64| (got - want).abs() / want;
            assert!(
                rel(est.area_mm2(), s.area_mm2) < 0.15,
                "{}: area {:.3} vs paper {:.3}",
                s.name,
                est.area_mm2(),
                s.area_mm2
            );
            assert!(
                rel(est.tag.read_energy_pj, s.tag_energy_pj) < 0.20,
                "{}: tag energy {:.1} vs paper {:.1}",
                s.name,
                est.tag.read_energy_pj,
                s.tag_energy_pj
            );
            assert!(
                rel(est.tag.latency_ns, s.tag_latency_ns) < 0.30,
                "{}: tag latency {:.2} vs paper {:.2}",
                s.name,
                est.tag.latency_ns,
                s.tag_latency_ns
            );
            if let (Some(d), Some(want_e), Some(want_l)) =
                (est.data, s.data_energy_pj, s.data_latency_ns)
            {
                assert!(
                    rel(d.read_energy_pj, want_e) < 0.10,
                    "{}: data energy {:.1} vs paper {:.1}",
                    s.name,
                    d.read_energy_pj,
                    want_e
                );
                assert!(
                    rel(d.latency_ns, want_l) < 0.10,
                    "{}: data latency {:.2} vs paper {:.2}",
                    s.name,
                    d.latency_ns,
                    want_l
                );
            }
        }
    }

    /// §5.6's latency claim: a Doppelgänger MTag + data access is ~1.31×
    /// faster than the baseline's data access.
    #[test]
    fn doppel_data_access_latency_advantage() {
        let m = CactiLite::new();
        let baseline_data = m.data_array(2048.0).latency_ns;
        // 1/4 data array: 18.6 KB of MTags + 256 KB of data.
        let mtag = m.tag_array(18.6).latency_ns;
        let data = m.data_array(256.0).latency_ns;
        let advantage = baseline_data / (mtag + data);
        assert!(
            advantage > 1.15 && advantage < 1.5,
            "expected ~1.31x latency advantage, got {advantage:.2}"
        );
    }

    #[test]
    fn monotone_in_capacity() {
        let m = CactiLite::new();
        let small = m.data_array(128.0);
        let large = m.data_array(1024.0);
        assert!(large.area_mm2 > small.area_mm2);
        assert!(large.latency_ns > small.latency_ns);
        assert!(large.read_energy_pj > small.read_energy_pj);
    }

    #[test]
    fn leakage_tracks_total_bits() {
        let m = CactiLite::new();
        let a = m.structure(100.0, Some(900.0));
        let b = m.structure(50.0, Some(450.0));
        assert!((a.leakage_mw / b.leakage_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        CactiLite::new().tag_array(0.0);
    }

    #[test]
    fn technology_scaling_multiplies_linearly() {
        let base = CactiLite::new();
        let shrunk = CactiLite::new().scaled(0.5, 0.6, 0.8);
        let a = base.structure(100.0, Some(1000.0));
        let b = shrunk.structure(100.0, Some(1000.0));
        assert!((b.area_mm2() / a.area_mm2() - 0.5).abs() < 1e-9);
        assert!((b.access_energy_pj() / a.access_energy_pj() - 0.6).abs() < 1e-9);
        assert!((b.leakage_mw / a.leakage_mw - 0.8).abs() < 1e-9);
        // Latency is untouched by first-order scaling here.
        assert_eq!(a.access_latency_ns(), b.access_latency_ns());
    }

    #[test]
    #[should_panic(expected = "factors must be positive")]
    fn scaling_rejects_nonpositive_factors() {
        let _ = CactiLite::new().scaled(0.0, 1.0, 1.0);
    }

    #[test]
    fn display_nonempty() {
        let est = CactiLite::new().structure(10.0, Some(100.0));
        assert!(est.to_string().contains("area"));
    }
}
