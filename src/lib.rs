//! Root crate of the Doppelganger cache reproduction workspace.
//!
//! Re-exports the member crates for convenient use from examples and
//! integration tests. See the individual crates for documentation:
//! [`dg_mem`], [`dg_cache`], [`doppelganger`], [`dg_compress`],
//! [`dg_energy`], [`dg_workloads`], [`dg_system`].

pub use dg_cache;
pub use dg_compress;
pub use dg_energy;
pub use dg_mem;
pub use dg_system;
pub use dg_workloads;
pub use doppelganger;
