//! Property-based tests of the core invariants, spanning crates
//! (dg-check harness).

use dg_cache::{CacheGeometry, ConventionalCache};
use dg_check::{any, props, vec};
use dg_mem::{Addr, AnnotationTable, ApproxRegion, BlockAddr, BlockData, ElemType, MemoryImage};
use dg_system::{LlcKind, System, SystemConfig};
use doppelganger::{DoppelgangerCache, DoppelgangerConfig, MapSpace};
use std::collections::HashMap;

fn small_dopp_config() -> DoppelgangerConfig {
    DoppelgangerConfig {
        tag_entries: 64,
        tag_ways: 4,
        data_entries: 16,
        data_ways: 4,
        map_space: MapSpace::new(8),
        unified: false,
    }
}

fn region() -> ApproxRegion {
    ApproxRegion::new(Addr(0), 1 << 24, ElemType::F32, 0.0, 100.0)
}

fn block_from(v: u16) -> BlockData {
    // A small value universe so maps collide often (stressing the
    // sharing lists) while still exercising many distinct maps.
    BlockData::from_values(ElemType::F32, &[f64::from(v % 512) * 0.2; 16])
}

/// One random operation against the Doppelgänger cache, decoded from a
/// plain (discriminant, address, value) tuple so the harness can
/// generate and shrink it.
#[derive(Clone, Debug)]
enum Op {
    Read(u16),
    Insert(u16, u16),
    Write(u16, u16),
    Invalidate(u16),
}

fn decode_op((kind, addr, value): (u8, u16, u16)) -> Op {
    match kind {
        0 => Op::Read(addr),
        1 => Op::Insert(addr, value),
        2 => Op::Write(addr, value),
        _ => Op::Invalidate(addr),
    }
}

props! {
    cases = 64;

    /// After any sequence of reads/inserts/writes/invalidations, every
    /// structural invariant of the Doppelgänger cache holds: tag lists
    /// are consistent doubly-linked lists, maps locate live data
    /// entries, no orphans exist.
    fn doppelganger_invariants_under_random_ops(
        raw_ops in vec((0u8..4, 0u16..256, any::<u16>()), 1..400),
    ) {
        let mut cache = DoppelgangerCache::new(small_dopp_config());
        let r = region();
        for op in raw_ops.into_iter().map(decode_op) {
            match op {
                Op::Read(a) => { cache.read(BlockAddr(u64::from(a))); }
                Op::Insert(a, v) => {
                    let addr = BlockAddr(u64::from(a));
                    if !cache.contains(addr) {
                        cache.insert_approx(addr, block_from(v), &r);
                    }
                }
                Op::Write(a, v) => {
                    cache.write(BlockAddr(u64::from(a)), block_from(v), Some(&r));
                }
                Op::Invalidate(a) => { cache.invalidate(BlockAddr(u64::from(a))); }
            }
            cache.check_invariants();
        }
        // Residency accounting is consistent.
        assert!(cache.resident_data() <= cache.resident_tags() ||
                cache.resident_tags() == 0);
    }

    /// A conventional cache behaves exactly like a map from addresses to
    /// the last written data, for whatever subset it currently holds.
    fn conventional_cache_matches_oracle(
        ops in vec((0..64u64, any::<u16>(), any::<bool>()), 1..300),
    ) {
        let mut cache = ConventionalCache::new(CacheGeometry::from_entries(16, 4));
        let mut oracle: HashMap<u64, BlockData> = HashMap::new();
        for (a, v, is_write) in ops {
            let addr = BlockAddr(a);
            let data = block_from(v);
            if is_write {
                if !cache.write(addr, data) {
                    cache.fill_with(addr, data, true);
                }
                oracle.insert(a, data);
            } else if let Some(got) = cache.read(addr) {
                // A hit must return exactly what was last written there.
                if let Some(want) = oracle.get(&a) {
                    assert_eq!(&got, want, "stale data at {}", a);
                }
            }
        }
    }

    /// Blocks whose values are within the same quantization bin share a
    /// map; blocks far apart (more than 2 bins in average) never do.
    fn map_similarity_soundness(base in 0.0f64..90.0, delta in 0.0f64..10.0, m in 6u32..16) {
        let r = region();
        let space = MapSpace::new(m);
        let a = BlockData::from_values(ElemType::F32, &[base; 16]);
        let b = BlockData::from_values(ElemType::F32, &[base + delta; 16]);
        let bins = (1u64 << m) as f64;
        let bin_width = 100.0 / bins;
        let map_a = space.map_block(&a, &r);
        let map_b = space.map_block(&b, &r);
        if delta > 2.0 * bin_width {
            assert_ne!(map_a, map_b, "blocks {} apart merged at {} bins", delta, bins);
        }
        if delta == 0.0 {
            assert_eq!(map_a, map_b);
        }
    }

    /// BΔI compression is lossless for arbitrary block contents.
    fn bdi_round_trips(bytes in any::<[u8; 32]>()) {
        // Tile the 32 random bytes to fill a block (keeps the generator
        // small while still covering every encoding path over time).
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&bytes);
        full[32..].copy_from_slice(&bytes);
        let b = BlockData::from_bytes(full);
        let c = dg_compress::bdi::compress(&b);
        assert_eq!(dg_compress::bdi::decompress(&c), b);
        assert!(c.size_bytes() <= 64);
    }

    /// The full system with a baseline LLC is functionally transparent:
    /// a random multi-core access pattern reads back exactly what an
    /// ideal flat memory would.
    fn baseline_system_equals_flat_memory(
        ops in vec((0..4usize, 0..512u64, any::<u32>(), any::<bool>()), 1..250),
    ) {
        let cfg = SystemConfig::tiny(LlcKind::Baseline);
        let mut sys = System::new(cfg, MemoryImage::new(), AnnotationTable::new());
        let mut flat: HashMap<u64, u32> = HashMap::new();
        for (core, slot, value, is_write) in ops {
            let addr = Addr(slot * 4);
            if is_write {
                sys.store(core, addr, &value.to_le_bytes());
                flat.insert(slot, value);
            } else {
                let mut buf = [0u8; 4];
                sys.load(core, addr, &mut buf);
                let want = flat.get(&slot).copied().unwrap_or(0);
                assert_eq!(u32::from_le_bytes(buf), want, "slot {}", slot);
            }
        }
    }

    /// On the split Doppelgänger system, precise addresses stay
    /// bit-exact under arbitrary mixed access patterns, while the
    /// structural invariants of the approximate cache hold throughout.
    fn split_system_precise_exactness_and_invariants(
        ops in vec(
            (0..4usize, 0..256u64, any::<u32>(), any::<bool>(), any::<bool>()),
            1..200,
        ),
    ) {
        let mut annots = AnnotationTable::new();
        // The low half of the address space is approximate f32 data.
        annots.add(ApproxRegion::new(Addr(0), 256 * 64, ElemType::F32, 0.0, 1.0e9));
        let mut sys = System::new(SystemConfig::tiny_split(), MemoryImage::new(), annots);
        let mut precise_model: HashMap<u64, u32> = HashMap::new();
        for (core, slot, value, is_write, approx_side) in ops {
            // Approximate accesses target the annotated low half;
            // precise ones an address far above it.
            let addr = if approx_side {
                Addr(slot * 64)
            } else {
                Addr((1 << 24) + slot * 64)
            };
            if is_write {
                sys.store(core, addr, &value.to_le_bytes());
                if !approx_side {
                    precise_model.insert(slot, value);
                }
            } else {
                let mut buf = [0u8; 4];
                sys.load(core, addr, &mut buf);
                if !approx_side {
                    let want = precise_model.get(&slot).copied().unwrap_or(0);
                    assert_eq!(u32::from_le_bytes(buf), want, "precise slot {}", slot);
                }
            }
            sys.check_llc_invariants();
        }
    }

    /// Annotation lookups agree with a linear scan.
    fn annotation_table_matches_linear_scan(
        raw_starts in vec(0u64..1000, 1..8),
        probe in 0u64..1100,
    ) {
        // Distinct, sorted region starts (the original proptest drew a
        // btree_set; deduplicating a vec gives the same shape).
        let starts: std::collections::BTreeSet<u64> = raw_starts.into_iter().collect();
        let mut table = AnnotationTable::new();
        let mut regions = Vec::new();
        for &s in &starts {
            // Non-overlapping 10-byte regions at 100-byte strides.
            let r = ApproxRegion::new(Addr(s * 100), 10, ElemType::U8, 0.0, 255.0);
            table.add(r);
            regions.push(r);
        }
        let got = table.lookup(Addr(probe)).copied();
        let want = regions.iter().find(|r| r.contains(Addr(probe))).copied();
        assert_eq!(got, want);
    }
}
