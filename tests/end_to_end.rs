//! Cross-crate integration tests: full workloads through the full
//! simulated system, across all three LLC organizations.

use dg_system::{evaluate, golden_output, run_on_system, LlcKind, SystemConfig};
use dg_workloads::small_suite;
use doppelganger::{DoppelgangerConfig, MapSpace};

fn tiny_unified() -> SystemConfig {
    let dopp = DoppelgangerConfig {
        tag_entries: 1024,
        tag_ways: 16,
        data_entries: 512,
        data_ways: 16,
        map_space: MapSpace::paper_default(),
        unified: true,
    };
    SystemConfig::tiny(LlcKind::Unified(dopp))
}

/// A conventional LLC never perturbs values: every kernel's output over
/// the baseline system is bit-identical to its golden run.
#[test]
fn baseline_is_bit_exact_for_every_kernel() {
    for kernel in small_suite(0xE2E) {
        let golden = golden_output(kernel.as_ref(), 4);
        let (_, out) = run_on_system(kernel.as_ref(), SystemConfig::tiny(LlcKind::Baseline), 4);
        assert_eq!(golden, out, "{} diverged on the baseline", kernel.name());
    }
}

/// The split Doppelgänger design keeps application error bounded for
/// every kernel, and its LLC invariants hold after a full run.
#[test]
fn split_design_bounded_error_and_invariants() {
    for kernel in small_suite(0xE2E) {
        let golden = golden_output(kernel.as_ref(), 4);
        let (sys, out) = run_on_system(kernel.as_ref(), SystemConfig::tiny_split(), 4);
        sys.check_llc_invariants();
        let err = kernel.error_metric(&golden, &out);
        assert!(
            err < 0.75,
            "{}: error {err:.3} out of any reasonable band",
            kernel.name()
        );
    }
}

/// Same for uniDoppelgänger, which additionally carries precise blocks
/// in the shared arrays — precise data must stay bit-exact even there.
#[test]
fn unified_design_runs_every_kernel() {
    for kernel in small_suite(0xE2E) {
        let golden = golden_output(kernel.as_ref(), 4);
        let (sys, out) = run_on_system(kernel.as_ref(), tiny_unified(), 4);
        sys.check_llc_invariants();
        let err = kernel.error_metric(&golden, &out);
        assert!(err < 0.75, "{}: error {err:.3}", kernel.name());
    }
}

/// Runs are deterministic: two evaluations of the same configuration
/// agree on every reported number.
#[test]
fn evaluations_are_deterministic() {
    let kernel = &dg_workloads::kernels::Jpeg::new(32, 32, 5);
    let a = evaluate(kernel, SystemConfig::tiny_split(), 4);
    let b = evaluate(kernel, SystemConfig::tiny_split(), 4);
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.output_error, b.output_error);
    assert_eq!(a.off_chip_blocks, b.off_chip_blocks);
    assert_eq!(a.llc, b.llc);
}

/// The headline trade-off holds end to end on at least one
/// similarity-rich kernel: the Doppelgänger design stores strictly
/// fewer data blocks than tags while keeping error low.
#[test]
fn sharing_happens_and_error_stays_low() {
    let kernel = dg_workloads::kernels::Inversek2j::new(4096, 3);
    let r = evaluate(&kernel, SystemConfig::tiny_split(), 4);
    assert!(
        r.llc.dopp.shared_insertions > 0,
        "no sharing at all is implausible for inversek2j"
    );
    assert!(r.output_error < 0.10, "error {:.3}", r.output_error);
}

/// Larger map spaces must not increase sharing (monotonicity of the
/// similarity knob, Fig. 7/9 direction).
#[test]
fn map_space_monotone_sharing() {
    let kernel = dg_workloads::kernels::Inversek2j::new(4096, 3);
    let mut prev_sharing = f64::INFINITY;
    for m in [10, 12, 14] {
        let dopp = DoppelgangerConfig {
            tag_entries: 512,
            tag_ways: 16,
            data_entries: 128,
            data_ways: 16,
            map_space: MapSpace::new(m),
            unified: false,
        };
        let r = evaluate(&kernel, SystemConfig::tiny(LlcKind::Split(dopp)), 4);
        let sharing = r.llc.dopp.sharing_rate();
        assert!(
            sharing <= prev_sharing + 0.02,
            "sharing should not grow with map bits: {m}-bit -> {sharing:.3}"
        );
        prev_sharing = sharing;
    }
}

/// Off-chip traffic and runtime respond to shrinking the data array in
/// the expected direction (Fig. 10/12).
#[test]
fn smaller_data_arrays_do_not_reduce_misses() {
    let kernel = dg_workloads::kernels::Ferret::new(512, 16, 8, 2);
    let mut prev_traffic = 0u64;
    for (numer, denom) in [(1usize, 2usize), (1, 4), (1, 8)] {
        let dopp = DoppelgangerConfig {
            tag_entries: 512,
            tag_ways: 16,
            data_entries: 512 * numer / denom,
            data_ways: 16,
            map_space: MapSpace::paper_default(),
            unified: false,
        };
        let r = evaluate(&kernel, SystemConfig::tiny(LlcKind::Split(dopp)), 4);
        assert!(
            r.off_chip_blocks >= prev_traffic,
            "traffic should not shrink with a smaller data array"
        );
        prev_traffic = r.off_chip_blocks;
    }
}
